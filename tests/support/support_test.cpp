// Unit tests for the support substrate: bitstreams, RNG, statistics,
// string utilities and table rendering.
#include <gtest/gtest.h>

#include "support/assert.hpp"
#include "support/bitstream.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace apcc {
namespace {

// ---------------------------------------------------------------- assert

TEST(Assert, AssertThrowsAssertionError) {
  EXPECT_THROW(APCC_ASSERT(false, "boom"), AssertionError);
}

TEST(Assert, CheckThrowsCheckError) {
  EXPECT_THROW(APCC_CHECK(false, "bad input"), CheckError);
}

TEST(Assert, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(APCC_ASSERT(1 + 1 == 2, ""));
  EXPECT_NO_THROW(APCC_CHECK(true, ""));
}

TEST(Assert, MessageContainsExpressionAndText) {
  try {
    APCC_CHECK(2 < 1, "two is not less than one");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

// ------------------------------------------------------------- bitstream

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (const bool b : pattern) w.write_bit(b);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const bool b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  BitWriter w;
  w.write_bits(0x5, 3);
  w.write_bits(0x1ff, 9);
  w.write_bits(0, 1);
  w.write_bits(0xdeadbeef, 32);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0x5u);
  EXPECT_EQ(r.read_bits(9), 0x1ffu);
  EXPECT_EQ(r.read_bits(1), 0u);
  EXPECT_EQ(r.read_bits(32), 0xdeadbeefu);
}

TEST(BitStream, MsbFirstPacking) {
  BitWriter w;
  w.write_bit(true);   // 1000 0000 expected in first byte
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);
}

TEST(BitStream, ValueIsMaskedToCount) {
  BitWriter w;
  w.write_bits(0xffffffff, 4);  // only low 4 bits should land
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xf0);  // 1111 padded with zeros
}

TEST(BitStream, AlignToByteThenByteReads) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.align_to_byte();
  w.write_byte(0xab);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  r.align_to_byte();
  EXPECT_EQ(r.read_byte(), 0xab);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, UnderflowThrows) {
  BitWriter w;
  w.write_bits(0b11, 2);
  const auto bytes = w.take();  // 1 padded byte
  BitReader r(bytes);
  (void)r.read_bits(8);
  EXPECT_THROW((void)r.read_bits(1), CheckError);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_bits(0, 5);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 6u);
}

TEST(BitStream, EmptyReaderIsExhausted) {
  BitReader r({});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.bits_remaining(), 0u);
}

// Property: random write/read sequences round-trip exactly.
TEST(BitStream, RandomRoundTripProperty) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<std::uint32_t, unsigned>> writes;
    BitWriter w;
    const int n = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < n; ++i) {
      const auto count = static_cast<unsigned>(1 + rng.next_below(32));
      const auto value = static_cast<std::uint32_t>(rng.next_u64());
      const std::uint32_t masked =
          count == 32 ? value : (value & ((1u << count) - 1));
      writes.emplace_back(masked, count);
      w.write_bits(value, count);
    }
    const auto bytes = w.take();
    BitReader r(bytes);
    for (const auto& [value, count] : writes) {
      EXPECT_EQ(r.read_bits(count), value);
    }
  }
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, WeightedSelectionRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_weighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, TripCountAtLeastOneAndNearMean) {
  Rng rng(19);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto t = rng.next_trip_count(8.0);
    EXPECT_GE(t, 1u);
    total += static_cast<double>(t);
  }
  EXPECT_NEAR(total / n, 8.0, 0.5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ----------------------------------------------------------------- stats

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.9);    // bucket 4
  h.add(-3.0);   // clamps to 0
  h.add(42.0);   // clamps to 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(TimeWeightedAverage, StepFunctionIntegral) {
  TimeWeightedAverage twa;
  twa.sample(0, 100.0);
  twa.sample(10, 200.0);  // 100 for 10 cycles
  twa.sample(30, 0.0);    // 200 for 20 cycles
  // Integral to t=40: 100*10 + 200*20 + 0*10 = 5000 over 40 cycles.
  EXPECT_DOUBLE_EQ(twa.integral(40), 5000.0);
  EXPECT_DOUBLE_EQ(twa.average(40), 125.0);
  EXPECT_DOUBLE_EQ(twa.peak(), 200.0);
}

TEST(TimeWeightedAverage, EmptyAndSingleSample) {
  TimeWeightedAverage twa;
  EXPECT_TRUE(twa.empty());
  twa.sample(5, 7.0);
  EXPECT_DOUBLE_EQ(twa.average(5), 7.0);
  EXPECT_DOUBLE_EQ(twa.average(15), 7.0);
}

// --------------------------------------------------------------- strings

TEST(Strings, SplitFieldsDropsEmpties) {
  const auto fields = split_fields("add  r1,\tr2, r3");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "add");
  EXPECT_EQ(fields[3], "r3");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseIntDecimalAndHex) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("0x1F"), 31);
  EXPECT_EQ(parse_int("+5"), 5);
}

TEST(Strings, ParseIntRejectsGarbage) {
  EXPECT_THROW((void)parse_int("12ab"), CheckError);
  EXPECT_THROW((void)parse_int(""), CheckError);
  EXPECT_THROW((void)parse_int("-"), CheckError);
  EXPECT_THROW((void)parse_int("0x"), CheckError);
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(0.1234), "12.34%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

// ----------------------------------------------------------------- table

TEST(TextTable, AlignsColumnsAndSeparatesHeader) {
  TextTable t;
  t.row().cell("name").cell("value");
  t.row().cell("x").cell(std::uint64_t{12345});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(TextTable, DoubleFormatting) {
  TextTable t;
  t.row().cell("v");
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(TextTable, CellWithoutRowThrows) {
  TextTable t;
  EXPECT_THROW(t.cell("oops"), AssertionError);
}

}  // namespace
}  // namespace apcc
