// Shared fixtures for the serving test binary: the workloads under
// test, their direct-API reference systems, a policy grid that is
// valid for every test workload, and field-by-field RunResult
// comparison (the byte-identity differentials all build on these).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hpp"
#include "serving/service.hpp"
#include "workloads/suite.hpp"

namespace apcc::serving::testsupport {

inline const std::vector<workloads::WorkloadKind>& kinds_under_test() {
  static const auto* kinds = new std::vector<workloads::WorkloadKind>{
      workloads::WorkloadKind::kCrcLike, workloads::WorkloadKind::kAdpcmLike};
  return *kinds;
}

/// Direct-API reference systems, one per kind (default SystemConfig).
inline const std::vector<core::CodeCompressionSystem>& reference_systems() {
  static const auto* systems = [] {
    auto* out = new std::vector<core::CodeCompressionSystem>();
    for (const auto kind : kinds_under_test()) {
      out->push_back(core::CodeCompressionSystem::from_workload(
          workloads::make_workload(kind)));
    }
    return out;
  }();
  return *systems;
}

/// Strategy x k x budget grid valid for every test workload.
inline std::vector<sweep::SweepTask> test_grid() {
  std::uint64_t largest = 0;
  for (const auto& system : reference_systems()) {
    for (const auto b : system.default_trace()) {
      largest = std::max(largest, system.cfg().block(b).size_bytes());
    }
  }
  std::vector<sweep::SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 4u}) {
      for (const bool tight : {false, true}) {
        sweep::SweepTask task;
        task.config.policy.strategy = strategy;
        task.config.policy.compress_k = k;
        task.config.policy.predecompress_k = k;
        if (tight) task.config.policy.memory_budget = largest * 3 + 32;
        task.label = std::string(runtime::strategy_name(strategy)) + "/k" +
                     std::to_string(k) + (tight ? "/tight" : "/unbounded");
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

inline void expect_identical(const sim::RunResult& x, const sim::RunResult& y) {
  EXPECT_EQ(x.total_cycles, y.total_cycles);
  EXPECT_EQ(x.baseline_cycles, y.baseline_cycles);
  EXPECT_EQ(x.busy_cycles, y.busy_cycles);
  EXPECT_EQ(x.stall_cycles, y.stall_cycles);
  EXPECT_EQ(x.exception_cycles, y.exception_cycles);
  EXPECT_EQ(x.critical_decompress_cycles, y.critical_decompress_cycles);
  EXPECT_EQ(x.patch_cycles, y.patch_cycles);
  EXPECT_EQ(x.block_entries, y.block_entries);
  EXPECT_EQ(x.exceptions, y.exceptions);
  EXPECT_EQ(x.demand_decompressions, y.demand_decompressions);
  EXPECT_EQ(x.predecompressions, y.predecompressions);
  EXPECT_EQ(x.predecompress_hits, y.predecompress_hits);
  EXPECT_EQ(x.predecompress_partial, y.predecompress_partial);
  EXPECT_EQ(x.wasted_predecompressions, y.wasted_predecompressions);
  EXPECT_EQ(x.deletions, y.deletions);
  EXPECT_EQ(x.evictions, y.evictions);
  EXPECT_EQ(x.patches, y.patches);
  EXPECT_EQ(x.unpatches, y.unpatches);
  EXPECT_EQ(x.dropped_requests, y.dropped_requests);
  EXPECT_EQ(x.decomp_helper_busy_cycles, y.decomp_helper_busy_cycles);
  EXPECT_EQ(x.comp_helper_busy_cycles, y.comp_helper_busy_cycles);
  EXPECT_EQ(x.original_image_bytes, y.original_image_bytes);
  EXPECT_EQ(x.compressed_area_bytes, y.compressed_area_bytes);
  EXPECT_EQ(x.peak_occupancy_bytes, y.peak_occupancy_bytes);
  EXPECT_EQ(x.avg_occupancy_bytes, y.avg_occupancy_bytes);
  EXPECT_EQ(x.codec_ratio, y.codec_ratio);
}

inline void expect_identical(const sweep::SweepOutcome& a,
                             const sweep::SweepOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.label, b.label);
  expect_identical(a.result, b.result);
}

/// ServiceOptions carrying just a pool width.
inline serving::ServiceOptions pool_options(unsigned workers) {
  serving::ServiceOptions options;
  options.workers = workers;
  return options;
}

/// A Service with every test workload registered; ids in kind order.
/// The ServiceOptions overload is for tests that configure more than
/// the pool width (cache budgets, fault plans).
struct Fixture {
  explicit Fixture(unsigned workers) : Fixture(pool_options(workers)) {}
  explicit Fixture(ServiceOptions options) : service(std::move(options)) {
    for (const auto kind : kinds_under_test()) {
      ids.push_back(service.register_workload(workloads::make_workload(kind)));
    }
  }
  Service service;
  std::vector<WorkloadId> ids;
};

}  // namespace apcc::serving::testsupport
