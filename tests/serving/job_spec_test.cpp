// JobSpec front-door differentials: submit(JobSpec) must produce
// results byte-identical to the typed overloads AND to the direct
// run / run_sweep / run_campaign calls for all three kinds -- and the
// QoS fields (priority class, worker budget, client tag) must change
// *when* cells run, never what any job returns: mixed-priority /
// budgeted submissions are pinned byte-identical to plain FIFO at
// workers 1/2/4. (On the 1-vCPU CI box the parallel interleavings are
// limited; the determinism claim is exactly what these differentials
// verify. The TSan CI job runs this binary.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.hpp"
#include "serving/service.hpp"
#include "support/assert.hpp"
#include "workloads/suite.hpp"

#include "test_support.hpp"

namespace apcc::serving {
namespace {

using namespace testsupport;

JobSpec run_spec(const std::string& ref) {
  JobSpec spec;
  spec.kind = JobKind::kRun;
  spec.workloads = {ref};
  return spec;
}

JobSpec sweep_spec(const std::string& ref,
                   std::vector<sweep::SweepTask> tasks) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.workloads = {ref};
  spec.tasks = std::move(tasks);
  return spec;
}

JobSpec campaign_spec(std::vector<std::string> refs,
                      std::vector<sweep::SweepTask> grid) {
  JobSpec spec;
  spec.kind = JobKind::kCampaign;
  spec.workloads = std::move(refs);
  spec.tasks = std::move(grid);
  return spec;
}

TEST(JobSpec, RunMatchesTypedAndDirect) {
  const sim::RunResult direct = reference_systems()[0].run();
  for (const unsigned workers : {1u, 2u, 4u}) {
    Fixture fx(workers);
    SCOPED_TRACE(std::to_string(workers) + " workers");
    // By id reference (what the typed veneer emits)...
    const auto id_handle =
        fx.service.submit(run_spec("@" + std::to_string(fx.ids[0])));
    const JobResult& by_id = id_handle.wait();
    EXPECT_EQ(by_id.kind, JobKind::kRun);
    expect_identical(by_id.run, direct);
    // ...by registered name...
    const auto name_handle = fx.service.submit(run_spec("crc-like"));
    expect_identical(name_handle.wait().run, direct);
    // ...and through the typed veneer, which shares the same path.
    expect_identical(fx.service.submit(RunJob{fx.ids[0]}).wait(), direct);
  }
}

TEST(JobSpec, SweepMatchesTypedAndDirect) {
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);
  for (const unsigned workers : {1u, 2u, 4u}) {
    Fixture fx(workers);
    SCOPED_TRACE(std::to_string(workers) + " workers");
    const auto unified_handle =
        fx.service.submit(sweep_spec("crc-like", grid));
    const JobResult& unified = unified_handle.wait();
    EXPECT_EQ(unified.kind, JobKind::kSweep);
    ASSERT_EQ(unified.sweep.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      expect_identical(direct[i], unified.sweep[i]);
    }
    const auto typed_handle = fx.service.submit(SweepJob{fx.ids[0], {}, grid});
    const auto& typed = typed_handle.wait();
    ASSERT_EQ(typed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      expect_identical(direct[i], typed[i]);
    }
  }
}

TEST(JobSpec, CampaignMatchesTypedAndDirect) {
  const auto grid = test_grid();
  std::vector<core::CampaignEntry> entries;
  const auto& systems = reference_systems();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    entries.push_back({workloads::workload_name(kinds_under_test()[i]),
                       &systems[i]});
  }
  sweep::CampaignOptions sequential;
  sequential.workers = 1;
  const auto direct = core::run_campaign(entries, grid, sequential);

  for (const unsigned workers : {1u, 2u, 4u}) {
    Fixture fx(workers);
    SCOPED_TRACE(std::to_string(workers) + " workers");
    std::vector<std::string> refs;
    for (const auto id : fx.ids) refs.push_back("@" + std::to_string(id));
    const auto unified_handle = fx.service.submit(campaign_spec(refs, grid));
    const JobResult& unified = unified_handle.wait();
    EXPECT_EQ(unified.kind, JobKind::kCampaign);
    ASSERT_EQ(unified.campaign.size(), direct.size());
    for (std::size_t w = 0; w < direct.size(); ++w) {
      EXPECT_EQ(unified.campaign[w].workload, direct[w].workload);
      ASSERT_EQ(unified.campaign[w].outcomes.size(),
                direct[w].outcomes.size());
      for (std::size_t i = 0; i < direct[w].outcomes.size(); ++i) {
        expect_identical(direct[w].outcomes[i],
                         unified.campaign[w].outcomes[i]);
      }
    }
    CampaignJob typed;
    typed.workloads = fx.ids;
    typed.grid = grid;
    const auto typed_handle = fx.service.submit(std::move(typed));
    const auto& typed_results = typed_handle.wait();
    ASSERT_EQ(typed_results.size(), direct.size());
    for (std::size_t w = 0; w < direct.size(); ++w) {
      ASSERT_EQ(typed_results[w].outcomes.size(), direct[w].outcomes.size());
      for (std::size_t i = 0; i < direct[w].outcomes.size(); ++i) {
        expect_identical(direct[w].outcomes[i], typed_results[w].outcomes[i]);
      }
    }
  }
}

TEST(JobSpec, BatchedJobsMatchSequential) {
  // batch-cells is a scheduling knob only: a sweep or campaign run in
  // lockstep batches (3 deliberately does not divide the grid) must be
  // byte-identical to the per-engine sequential reference, through both
  // the JobSpec front door and the typed veneers.
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);

  for (const unsigned workers : {1u, 2u, 4u}) {
    Fixture fx(workers);
    SCOPED_TRACE(std::to_string(workers) + " workers");
    auto spec = sweep_spec("crc-like", grid);
    spec.batch_cells = 3;
    const auto unified_handle = fx.service.submit(spec);
    const JobResult& unified = unified_handle.wait();
    ASSERT_EQ(unified.sweep.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      expect_identical(direct[i], unified.sweep[i]);
    }
    const auto typed_handle =
        fx.service.submit(SweepJob{fx.ids[0], {}, grid, true, 3});
    const auto& typed = typed_handle.wait();
    ASSERT_EQ(typed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      expect_identical(direct[i], typed[i]);
    }

    auto campaign = campaign_spec({"crc-like", "adpcm-like"}, grid);
    campaign.batch_cells = 3;
    const auto batched_handle = fx.service.submit(campaign);
    const JobResult& batched = batched_handle.wait();
    auto plain = campaign_spec({"crc-like", "adpcm-like"}, grid);
    const auto reference_handle = fx.service.submit(plain);
    const JobResult& reference = reference_handle.wait();
    ASSERT_EQ(batched.campaign.size(), reference.campaign.size());
    for (std::size_t w = 0; w < reference.campaign.size(); ++w) {
      EXPECT_EQ(batched.campaign[w].workload, reference.campaign[w].workload);
      ASSERT_EQ(batched.campaign[w].outcomes.size(),
                reference.campaign[w].outcomes.size());
      for (std::size_t i = 0; i < reference.campaign[w].outcomes.size(); ++i) {
        expect_identical(reference.campaign[w].outcomes[i],
                         batched.campaign[w].outcomes[i]);
      }
    }
  }
}

TEST(JobSpec, MixedPriorityAndBudgetByteIdenticalToFifo) {
  // The acceptance differential: the same four jobs -- a high-priority
  // budgeted run, a batch-class budgeted sweep, a normal campaign, and
  // a batch run -- submitted together under QoS and again as plain
  // FIFO (all defaults), at workers 1/2/4. Scheduling order differs;
  // every result must be byte-identical.
  const auto grid = test_grid();
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    Fixture qos(workers);
    Fixture fifo(workers);

    auto j1 = run_spec("crc-like");
    j1.priority = sweep::Priority::kHigh;
    j1.max_workers = 1;
    j1.client = "latency-tier";
    auto j2 = sweep_spec("crc-like", grid);
    j2.priority = sweep::Priority::kBatch;
    j2.max_workers = 2;
    j2.client = "nightly";
    auto j3 = campaign_spec({"crc-like", "adpcm-like"}, grid);
    auto j4 = run_spec("adpcm-like");
    j4.priority = sweep::Priority::kBatch;

    // Submit everything before waiting on anything, both services.
    const auto q1 = qos.service.submit(j1);
    const auto q2 = qos.service.submit(j2);
    const auto q3 = qos.service.submit(j3);
    const auto q4 = qos.service.submit(j4);
    const auto f1 = fifo.service.submit(run_spec("crc-like"));
    const auto f2 = fifo.service.submit(sweep_spec("crc-like", grid));
    const auto f3 =
        fifo.service.submit(campaign_spec({"crc-like", "adpcm-like"}, grid));
    const auto f4 = fifo.service.submit(run_spec("adpcm-like"));

    expect_identical(q1.wait().run, f1.wait().run);
    const auto& qs = q2.wait().sweep;
    const auto& fs = f2.wait().sweep;
    ASSERT_EQ(qs.size(), fs.size());
    for (std::size_t i = 0; i < fs.size(); ++i) {
      expect_identical(fs[i], qs[i]);
    }
    const auto& qc = q3.wait().campaign;
    const auto& fc = f3.wait().campaign;
    ASSERT_EQ(qc.size(), fc.size());
    for (std::size_t w = 0; w < fc.size(); ++w) {
      EXPECT_EQ(qc[w].workload, fc[w].workload);
      ASSERT_EQ(qc[w].outcomes.size(), fc[w].outcomes.size());
      for (std::size_t i = 0; i < fc[w].outcomes.size(); ++i) {
        expect_identical(fc[w].outcomes[i], qc[w].outcomes[i]);
      }
    }
    expect_identical(q4.wait().run, f4.wait().run);
    // And FIFO itself is the direct reference.
    expect_identical(f1.wait().run, reference_systems()[0].run());
  }
}

TEST(JobSpec, FairShareWithWeightsByteIdenticalToFifo) {
  // The PR 9 acceptance differential: an identical multi-tenant
  // submission -- three client tags, server-side weights, mixed
  // priorities -- once under the default weighted fair share and once
  // on the strict lowest-id reference (fair_share off), at workers
  // 1/2/4. The scheduler moves items *between tenants*; every result
  // must be byte-identical (fair share changes when cells run, never
  // what any job returns).
  const auto grid = test_grid();
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    ServiceOptions fair_options;
    fair_options.workers = workers;
    fair_options.client_weights = {{"latency-tier", 4}, {"nightly", 1}};
    Fixture fair(std::move(fair_options));
    ServiceOptions fifo_options;
    fifo_options.workers = workers;
    fifo_options.fair_share = false;  // tags become inert: lowest id wins
    Fixture fifo(std::move(fifo_options));

    auto j1 = run_spec("crc-like");
    j1.priority = sweep::Priority::kHigh;
    j1.client = "latency-tier";
    auto j2 = sweep_spec("crc-like", grid);
    j2.client = "nightly";
    auto j3 = campaign_spec({"crc-like", "adpcm-like"}, grid);
    j3.client = "analytics";  // no configured weight: defaults to 1
    auto j4 = sweep_spec("adpcm-like", grid);
    j4.client = "latency-tier";
    j4.priority = sweep::Priority::kBatch;

    // Submit everything before waiting on anything, both services.
    std::vector<JobHandle<JobResult>> fair_handles;
    std::vector<JobHandle<JobResult>> fifo_handles;
    for (const auto* job : {&j1, &j2, &j3, &j4}) {
      fair_handles.push_back(fair.service.submit(*job));
      fifo_handles.push_back(fifo.service.submit(*job));
    }

    expect_identical(fair_handles[0].wait().run, fifo_handles[0].wait().run);
    for (const std::size_t sweep_job : {std::size_t{1}, std::size_t{3}}) {
      const auto& fs = fair_handles[sweep_job].wait().sweep;
      const auto& rs = fifo_handles[sweep_job].wait().sweep;
      ASSERT_EQ(fs.size(), rs.size());
      for (std::size_t i = 0; i < rs.size(); ++i) {
        expect_identical(rs[i], fs[i]);
      }
    }
    const auto& fc = fair_handles[2].wait().campaign;
    const auto& rc = fifo_handles[2].wait().campaign;
    ASSERT_EQ(fc.size(), rc.size());
    for (std::size_t w = 0; w < rc.size(); ++w) {
      EXPECT_EQ(fc[w].workload, rc[w].workload);
      ASSERT_EQ(fc[w].outcomes.size(), rc[w].outcomes.size());
      for (std::size_t i = 0; i < rc[w].outcomes.size(); ++i) {
        expect_identical(rc[w].outcomes[i], fc[w].outcomes[i]);
      }
    }
    // And the FIFO reference is itself the direct sequential result.
    expect_identical(fifo_handles[0].wait().run, reference_systems()[0].run());
  }
}

TEST(JobSpec, ValidateRejectsMalformedSpecs) {
  Fixture fx(1);
  {
    JobSpec two_workloads = run_spec("crc-like");
    two_workloads.workloads.push_back("adpcm-like");
    EXPECT_THROW({ (void)fx.service.submit(two_workloads); },
                 apcc::CheckError);
  }
  {
    JobSpec run_with_grid = run_spec("crc-like");
    run_with_grid.tasks = test_grid();
    EXPECT_THROW({ (void)fx.service.submit(run_with_grid); },
                 apcc::CheckError);
  }
  {
    JobSpec no_workload;
    no_workload.kind = JobKind::kSweep;
    EXPECT_THROW({ (void)fx.service.submit(no_workload); },
                 apcc::CheckError);
  }
  EXPECT_THROW({ (void)fx.service.submit(run_spec("no-such-workload")); },
               apcc::CheckError);
  EXPECT_THROW({ (void)fx.service.submit(run_spec("@99")); },
               apcc::CheckError);
  EXPECT_THROW({ (void)fx.service.submit(run_spec("@banana")); },
               apcc::CheckError);
  {
    JobSpec bad_kind = run_spec("crc-like");
    bad_kind.kind = static_cast<JobKind>(250);
    EXPECT_THROW({ (void)fx.service.submit(std::move(bad_kind)); },
                 apcc::CheckError);
  }
  {
    // A run job has exactly one cell; a lockstep batch width has
    // nothing to apply to and is rejected, not silently ignored.
    JobSpec batched_run = run_spec("crc-like");
    batched_run.batch_cells = 4;
    EXPECT_THROW({ (void)fx.service.submit(std::move(batched_run)); },
                 apcc::CheckError);
  }
}

TEST(JobSpec, ResolveMapsIdsAndNames) {
  Fixture fx(1);
  EXPECT_EQ(fx.service.resolve("@0"), 0u);
  EXPECT_EQ(fx.service.resolve("crc-like"), fx.ids[0]);
  EXPECT_EQ(fx.service.resolve("adpcm-like"), fx.ids[1]);
  EXPECT_THROW({ (void)fx.service.resolve("gsm-like"); }, apcc::CheckError);
}

TEST(JobSpec, UnifiedHandleSharesStateWithCopies) {
  Fixture fx(1);
  const auto handle = fx.service.submit(run_spec("crc-like"));
  const auto copy = handle;
  EXPECT_EQ(handle.id(), copy.id());
  expect_identical(handle.wait().run, copy.wait().run);
  EXPECT_TRUE(copy.ready());
  EXPECT_FALSE(JobHandle<JobResult>{}.valid());
}

}  // namespace
}  // namespace apcc::serving
