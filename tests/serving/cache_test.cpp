// Unit tests for the pure eviction policy (serving/cache.hpp): victim
// selection is a deterministic function of (entries, budget, clock),
// pinned entries are never chosen, and the cost-aware score prefers
// big, stale, cheap-to-rebuild artifacts over small, recent, expensive
// ones. The Service-level behaviour (pin lifetimes, rebuild
// byte-identity, counters) lives in eviction_test.cpp; this file pins
// the policy math in isolation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serving/cache.hpp"

namespace apcc::serving {
namespace {

CacheEntry entry(std::uint64_t bytes, std::uint64_t cost,
                 std::uint64_t last_use, bool pinned = false) {
  return CacheEntry{bytes, cost, last_use, pinned};
}

TEST(CachePolicy, UnderBudgetEvictsNothing) {
  const std::vector<CacheEntry> entries = {entry(100, 10, 1),
                                           entry(200, 10, 2)};
  EXPECT_TRUE(plan_evictions(entries, 300, 10).empty());
  EXPECT_TRUE(plan_evictions(entries, 1000, 10).empty());
  EXPECT_TRUE(plan_evictions({}, 0, 10).empty());
}

TEST(CachePolicy, EvictsJustEnoughToFit) {
  // 300 resident, budget 250: one eviction suffices, and the policy
  // stops as soon as the set fits -- it does not flush to zero.
  const std::vector<CacheEntry> entries = {entry(100, 10, 1),
                                           entry(200, 10, 2)};
  const auto plan = plan_evictions(entries, 250, 10);
  ASSERT_EQ(plan.size(), 1u);
}

TEST(CachePolicy, BudgetZeroEvictsEveryUnpinnedEntry) {
  // Budget 0 is the fault plan's forced flush: everything unpinned
  // goes, in score order.
  const std::vector<CacheEntry> entries = {
      entry(100, 10, 1), entry(200, 10, 2, /*pinned=*/true),
      entry(300, 10, 3)};
  const auto plan = plan_evictions(entries, 0, 10);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_TRUE((plan[0] == 0 && plan[1] == 2) ||
              (plan[0] == 2 && plan[1] == 0));
}

TEST(CachePolicy, PinnedEntriesAreNeverVictims) {
  // Even when sparing them leaves the set over budget: budgets are
  // pressure, not guarantees.
  const std::vector<CacheEntry> entries = {
      entry(1000, 1, 1, /*pinned=*/true), entry(2000, 1, 2, true)};
  EXPECT_TRUE(plan_evictions(entries, 1, 10).empty());
}

TEST(CachePolicy, ZeroByteEntriesAreSkipped) {
  // bytes == 0 means "not resident" (evicted already, or never
  // published) -- evicting it would free nothing.
  const std::vector<CacheEntry> entries = {entry(0, 10, 1),
                                           entry(100, 10, 2)};
  const auto plan = plan_evictions(entries, 0, 10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 1u);
}

TEST(CachePolicy, ScorePrefersStaleCheapBigOverRecentExpensiveSmall) {
  // Entry 0: big, stale, cheap to rebuild -- the ideal victim.
  // Entry 1: small, recent, expensive to rebuild -- worth keeping.
  const std::vector<CacheEntry> entries = {
      entry(/*bytes=*/1000, /*cost=*/10, /*last_use=*/1),
      entry(/*bytes=*/100, /*cost=*/100000, /*last_use=*/99)};
  const auto plan = plan_evictions(entries, 500, 100);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 0u);
}

TEST(CachePolicy, EqualCostReducesToLru) {
  // With rebuild_cost == bytes everywhere the score is pure staleness:
  // the least-recently-used entry goes first.
  const std::vector<CacheEntry> entries = {
      entry(100, 100, /*last_use=*/5), entry(100, 100, /*last_use=*/2),
      entry(100, 100, /*last_use=*/8)};
  const auto plan = plan_evictions(entries, 200, 10);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 1u);
}

TEST(CachePolicy, TiesBreakOnOlderLastUseThenLowerIndex) {
  // Entries 0 and 2 tie exactly (same bytes/cost/last_use); entry 1 is
  // equally scored but older. Order: 1 (older), then 0 (lower index).
  const std::vector<CacheEntry> entries = {
      entry(100, 100, 4), entry(50, 50, 4), entry(100, 100, 4)};
  // age=6: scores 6.0 each (bytes/cost == 1). last_use equal -> all tie
  // on score and last_use; index breaks it. Force full eviction.
  const auto plan = plan_evictions(entries, 0, 10);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], 0u);
  EXPECT_EQ(plan[1], 1u);
  EXPECT_EQ(plan[2], 2u);
}

TEST(CachePolicy, PlanIsDeterministic) {
  const std::vector<CacheEntry> entries = {
      entry(700, 3, 2), entry(100, 9, 9, true), entry(400, 4, 1),
      entry(250, 1, 7), entry(50, 2, 3)};
  const auto first = plan_evictions(entries, 300, 12);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plan_evictions(entries, 300, 12), first);
  }
}

TEST(CacheCostEstimates, AreDeterministicAndNonZero) {
  EXPECT_EQ(estimate_image_cost(0), 1u);
  EXPECT_EQ(estimate_image_cost(4096), 4096u);
  EXPECT_EQ(estimate_frontier_cost(0, 4), 1u);
  EXPECT_EQ(estimate_frontier_cost(100, 0), 100u);  // k=0 still costs
  EXPECT_EQ(estimate_frontier_cost(100, 4), 500u);
}

TEST(CacheBudgetConfig, UnboundedMeansAllZero) {
  CacheBudget budget;
  EXPECT_TRUE(budget.unbounded());
  budget.image_bytes = 1;
  EXPECT_FALSE(budget.unbounded());
  budget = CacheBudget{};
  budget.total_bytes = 1;
  EXPECT_FALSE(budget.unbounded());
}

TEST(CacheStatsFormat, RendersBothKindsWithEvictionCounters) {
  CacheStats stats;
  stats.images = ArtifactStats{3, 40, 40, 3, 0, 2, 8192, 4096, 1};
  stats.frontiers = ArtifactStats{5, 70, 70, 5, 1, 4, 1024, 512, 2};
  const std::string text = format_cache_stats(stats);
  EXPECT_NE(text.find("cache images:"), std::string::npos);
  EXPECT_NE(text.find("cache frontiers:"), std::string::npos);
  EXPECT_NE(text.find("2 eviction(s)"), std::string::npos);
  EXPECT_NE(text.find("4 eviction(s)"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(CacheStats, HoldsOneArtifactStatsPerKind) {
  // The PR 8 flat-accessor shim (stats.image_hits() et al.) is gone;
  // the per-kind structs are the only spelling.
  CacheStats stats;
  stats.images = ArtifactStats{1, 2, 3, 4, 5, 6, 7, 8, 9};
  stats.frontiers = ArtifactStats{11, 12, 13, 14, 15, 16, 17, 18, 19};
  EXPECT_EQ(stats.images.built, 1u);
  EXPECT_EQ(stats.images.bytes, 8u);
  EXPECT_EQ(stats.images.entries, 9u);
  EXPECT_EQ(stats.frontiers.built, 11u);
  EXPECT_EQ(stats.frontiers.bytes, 18u);
  EXPECT_EQ(stats.frontiers.entries, 19u);
}

}  // namespace
}  // namespace apcc::serving
