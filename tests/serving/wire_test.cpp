// Wire codec contract: serialize(parse(.)) is a fixed point for jobs
// and every result type (the byte-identical round-trip the CI golden
// gate diffs), parsing is strict (versioned header, unknown/duplicate
// keys, missing end -- all positioned errors with line + snippet), and
// omitted keys default so hand-written job files stay short. The
// checked-in golden files under tests/serving/data pin the canonical
// serialization: a schema change that alters them must bump
// JobSpec::kWireVersion deliberately.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "serving/wire.hpp"
#include "support/assert.hpp"

#ifndef APCC_WIRE_DATA_DIR
#define APCC_WIRE_DATA_DIR "."
#endif

namespace apcc::serving::wire {
namespace {

JobSpec sample_sweep_spec() {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.workloads = {"gsm-like"};
  spec.config.codec = compress::CodecKind::kLzss;
  spec.config.policy.predictor = runtime::PredictorKind::kStatic;
  spec.config.costs.exception_cycles = 300;
  spec.share_frontiers = false;
  spec.priority = sweep::Priority::kHigh;
  spec.max_workers = 3;
  spec.deadline_ms = 2500;
  spec.batch_cells = 3;
  spec.client = "bench rig #7";  // space + '#': exercises escaping
  sweep::SweepTask task;
  task.label = "pre-all/k=2 tight";
  task.config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  task.config.policy.compress_k = 2;
  task.config.policy.predecompress_k = 2;
  task.config.policy.memory_budget = 4096;
  task.config.costs.cycles_per_instruction = 1.25;
  spec.tasks.push_back(task);
  task.label = "on-demand";
  task.config.policy.strategy = runtime::DecompressionStrategy::kOnDemand;
  spec.tasks.push_back(task);
  return spec;
}

sim::RunResult sample_result(std::uint64_t seed) {
  sim::RunResult r;
  r.total_cycles = 1000 + seed;
  r.baseline_cycles = 900 + seed;
  r.busy_cycles = 800 + seed;
  r.stall_cycles = 7 * seed;
  r.exceptions = 13 + seed;
  r.demand_decompressions = 11 + seed;
  r.predecompressions = 5 * seed;
  r.deletions = 3 + seed;
  r.evictions = seed;
  r.original_image_bytes = 4096;
  r.compressed_area_bytes = 2048;
  r.peak_occupancy_bytes = 512 + seed;
  r.avg_occupancy_bytes = 123.456 + static_cast<double>(seed);
  r.codec_ratio = 0.515625;
  r.allocator.capacity = 8192;
  r.allocator.used = 100 + seed;
  r.allocator.total_allocations = 42 + seed;
  return r;
}

TEST(Wire, JobRoundTripIsFixedPoint) {
  for (const JobSpec& spec :
       {sample_sweep_spec(),
        [] {
          JobSpec run;
          run.kind = JobKind::kRun;
          run.workloads = {"@2"};
          run.max_workers = 1;
          return run;
        }(),
        [] {
          JobSpec campaign;
          campaign.kind = JobKind::kCampaign;
          campaign.workloads = {"crc-like", "adpcm-like", "a path/with space.s"};
          campaign.priority = sweep::Priority::kBatch;
          campaign.tasks.push_back({"only", {}});
          return campaign;
        }()}) {
    const std::string text = serialize_job(spec);
    const JobSpec reparsed = parse_job(text);
    EXPECT_EQ(serialize_job(reparsed), text);
    EXPECT_EQ(reparsed.kind, spec.kind);
    EXPECT_EQ(reparsed.workloads, spec.workloads);
    EXPECT_EQ(reparsed.client, spec.client);
    EXPECT_EQ(reparsed.priority, spec.priority);
    EXPECT_EQ(reparsed.max_workers, spec.max_workers);
    EXPECT_EQ(reparsed.deadline_ms, spec.deadline_ms);
    EXPECT_EQ(reparsed.batch_cells, spec.batch_cells);
    EXPECT_EQ(reparsed.share_frontiers, spec.share_frontiers);
    EXPECT_EQ(reparsed.tasks.size(), spec.tasks.size());
  }
}

TEST(Wire, MinimalJobParsesToDefaults) {
  const JobSpec spec = parse_job(
      "apcc.job v4\n"
      "kind run\n"
      "workload gsm-like\n"
      "end\n");
  EXPECT_EQ(spec.kind, JobKind::kRun);
  EXPECT_EQ(spec.workloads, std::vector<std::string>{"gsm-like"});
  EXPECT_EQ(spec.client, "");
  EXPECT_EQ(spec.priority, sweep::Priority::kNormal);
  EXPECT_EQ(spec.max_workers, 0u);
  EXPECT_EQ(spec.deadline_ms, 0u);
  // Omitted batch-cells is the v3-compatible default: the per-engine
  // scheduling path, no lockstep batching.
  EXPECT_EQ(spec.batch_cells, 0u);
  EXPECT_TRUE(spec.share_frontiers);
  EXPECT_TRUE(spec.tasks.empty());
  const JobSpec defaults = [] {
    JobSpec s;
    s.kind = JobKind::kRun;
    s.workloads = {"gsm-like"};
    return s;
  }();
  EXPECT_EQ(serialize_job(spec), serialize_job(defaults));
}

TEST(Wire, RecordLevelPolicyIsTheBaseTasksOverride) {
  // The record's policy/costs/fit lines are the base configuration
  // every explicit task inherits (exactly what `grid strategy-k`
  // expands over); task kvs override per cell. Order doesn't matter:
  // a policy line below the task lines still applies.
  const JobSpec spec = parse_job(
      "apcc.job v4\n"
      "kind sweep\n"
      "workload gsm-like\n"
      "task label=inherit strategy=pre-all\n"
      "task label=override strategy=pre-all kc=2 exception=250\n"
      "policy kc=8 kd=8\n"
      "costs exception=999\n"
      "end\n");
  ASSERT_EQ(spec.tasks.size(), 2u);
  EXPECT_EQ(spec.tasks[0].config.policy.compress_k, 8u);
  EXPECT_EQ(spec.tasks[0].config.policy.predecompress_k, 8u);
  EXPECT_EQ(spec.tasks[0].config.costs.exception_cycles, 999u);
  EXPECT_EQ(spec.tasks[0].config.policy.strategy,
            runtime::DecompressionStrategy::kPreAll);
  EXPECT_EQ(spec.tasks[1].config.policy.compress_k, 2u);   // overridden
  EXPECT_EQ(spec.tasks[1].config.policy.predecompress_k, 8u);  // inherited
  EXPECT_EQ(spec.tasks[1].config.costs.exception_cycles, 250u);
  // Still a canonical fixed point: tasks serialize fully explicit.
  const std::string text = serialize_job(spec);
  EXPECT_EQ(serialize_job(parse_job(text)), text);
}

TEST(Wire, GridSugarExpandsToTheStandardGrid) {
  const JobSpec spec = parse_job(
      "apcc.job v4\n"
      "kind sweep\n"
      "workload gsm-like\n"
      "codec lzss\n"
      "grid strategy-k\n"
      "end\n");
  core::SystemConfig config;
  config.codec = compress::CodecKind::kLzss;
  const auto expanded = strategy_k_grid(core::engine_config(config));
  ASSERT_EQ(spec.tasks.size(), expanded.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    EXPECT_EQ(spec.tasks[i].label, expanded[i].label);
    EXPECT_EQ(spec.tasks[i].config.policy.strategy,
              expanded[i].config.policy.strategy);
    EXPECT_EQ(spec.tasks[i].config.policy.compress_k,
              expanded[i].config.policy.compress_k);
  }
  // The canonical form is explicit: re-serialization emits task lines,
  // never 'grid', and stays a fixed point.
  const std::string text = serialize_job(spec);
  EXPECT_EQ(text.find("grid "), std::string::npos);
  EXPECT_EQ(serialize_job(parse_job(text)), text);
}

void expect_wire_error(const std::string& text, const char* needle,
                       std::size_t line) {
  try {
    (void)parse_job(text);
    FAIL() << "expected WireError containing '" << needle << "'";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    EXPECT_EQ(e.line(), line) << e.what();
  }
}

TEST(Wire, StrictParsingPositionsErrors) {
  expect_wire_error("apcc.job v1\nkind run\nend\n", "unsupported wire", 1);
  // Older records (v2: no deadline-ms; v3: no batch-cells) are not
  // silently accepted either: the header gate rejects anything but v4.
  expect_wire_error("apcc.job v2\nkind run\nworkload x\nend\n",
                    "unsupported wire", 1);
  expect_wire_error("apcc.job v3\nkind run\nworkload x\nend\n",
                    "unsupported wire", 1);
  expect_wire_error("bogus\n", "record header", 1);
  expect_wire_error("apcc.job v4\nkind run\nworkload x\n", "missing 'end'",
                    4);
  expect_wire_error("apcc.job v4\nworkload x\nend\n", "missing 'kind'", 1);
  expect_wire_error("apcc.job v4\nkind run\nfrobnicate 1\nend\n",
                    "unknown key", 3);
  expect_wire_error("apcc.job v4\nkind run\nkind sweep\nend\n",
                    "duplicate", 3);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\ntask label=a bogus=1\nend\n",
      "unknown key 'bogus'", 4);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\ntask label=a kc=1 kc=2\nend\n",
      "duplicate key 'kc'", 4);
  expect_wire_error("apcc.job v4\nkind run\nmax-workers lots\nend\n",
                    "malformed max-workers", 3);
  expect_wire_error("apcc.job v4\nkind run\ndeadline-ms soon\nend\n",
                    "malformed deadline-ms", 3);
  expect_wire_error(
      "apcc.job v4\nkind run\ndeadline-ms 1\ndeadline-ms 2\nend\n",
      "duplicate", 4);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\nbatch-cells many\n"
      "grid strategy-k\nend\n",
      "malformed batch-cells", 4);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\nbatch-cells 1\nbatch-cells 2\n"
      "grid strategy-k\nend\n",
      "duplicate", 5);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\nbatch-cells 4294967296\n"
      "grid strategy-k\nend\n",
      "batch-cells out of range", 4);
  // batch-cells on a run job is structurally invalid (a run has one
  // cell); rejected by validate(), positioned at the record header.
  expect_wire_error(
      "apcc.job v4\nkind run\nworkload x\nbatch-cells 4\nend\n",
      "batch-cells does not apply", 1);
  // Narrowing is strict: a value past the field's width is malformed,
  // never a silent wrap (4294967296 -> 0 would read as "uncapped").
  expect_wire_error("apcc.job v4\nkind run\nmax-workers 4294967296\nend\n",
                    "max-workers out of range", 3);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\ntask label=a kc=4294967296\n"
      "end\n",
      "kc out of range", 4);
  expect_wire_error("apcc.job v4\nkind run\npriority urgent\nend\n",
                    "unknown priority", 3);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\ngrid bogus\nend\n",
      "unknown grid", 4);
  expect_wire_error(
      "apcc.job v4\nkind sweep\nworkload x\ntask label=a\ngrid strategy-k\n"
      "end\n",
      "exclusive", 5);
  // A grid job record with no grid is the silent-zero-outcomes trap:
  // rejected at the wire layer (the typed API keeps empty-grid
  // semantics; tests/serving/service_test.cpp pins those).
  expect_wire_error("apcc.job v4\nkind sweep\nworkload x\nend\n",
                    "needs 'task' lines or 'grid strategy-k'", 1);
  expect_wire_error("apcc.job v4\nkind campaign\nworkload x\nend\n",
                    "needs 'task' lines or 'grid strategy-k'", 1);
  // ...and a campaign with no workloads (the old bare-`campaign`
  // batch line meant "whole suite"; a record spells them out).
  expect_wire_error(
      "apcc.job v4\nkind campaign\ngrid strategy-k\nend\n",
      "at least one 'workload' line", 1);
  // Structural validation is positioned too (the record header line).
  expect_wire_error("apcc.job v4\nkind run\nend\n", "exactly one workload",
                    1);
  expect_wire_error(
      "apcc.job v4\nkind run\nworkload x\ntask label=a\nend\n",
      "not a task grid", 1);
  // Comments and blank lines inside a record are skipped but counted.
  expect_wire_error(
      "apcc.job v4\n\n# comment\nkind run\nbroken-key 1\nend\n",
      "unknown key 'broken-key'", 5);
}

TEST(Wire, ResultRoundTripsAllKindsAndErrors) {
  ResultRecord run;
  run.job = 7;
  run.client = "tier-0";
  run.result.kind = JobKind::kRun;
  run.result.run = sample_result(1);

  ResultRecord sweep_rec;
  sweep_rec.job = 8;
  sweep_rec.result.kind = JobKind::kSweep;
  sweep_rec.result.sweep.push_back({0, "on-demand/k=1", sample_result(2)});
  sweep_rec.result.sweep.push_back({1, "pre-all k=2", sample_result(3)});

  ResultRecord campaign_rec;
  campaign_rec.job = 9;
  campaign_rec.result.kind = JobKind::kCampaign;
  campaign_rec.result.campaign.push_back(
      {"gsm-like", {{0, "a", sample_result(4)}, {1, "b", sample_result(5)}}});
  campaign_rec.result.campaign.push_back(
      {"crc-like", {{0, "a", sample_result(6)}}});

  ResultRecord failed;
  failed.job = 10;
  failed.client = "tier-0";
  failed.status = JobStatus::kError;
  failed.error = "workload 'x' has no default trace";

  // The v3 lifecycle statuses: error message optional, payload never.
  ResultRecord rejected;
  rejected.job = 11;
  rejected.client = "tier-0";
  rejected.status = JobStatus::kRejected;
  rejected.error = "rejected: job limit reached (4 jobs in flight)";

  ResultRecord cancelled;
  cancelled.job = 12;
  cancelled.status = JobStatus::kCancelled;  // no error line at all

  ResultRecord expired;
  expired.job = 13;
  expired.status = JobStatus::kDeadlineExceeded;
  expired.error = "job deadline exceeded";

  for (const ResultRecord& record :
       {run, sweep_rec, campaign_rec, failed, rejected, cancelled, expired}) {
    const std::string text = serialize_result(record);
    const ResultRecord reparsed = parse_result(text);
    EXPECT_EQ(serialize_result(reparsed), text);
    EXPECT_EQ(reparsed.job, record.job);
    EXPECT_EQ(reparsed.client, record.client);
    EXPECT_EQ(reparsed.status, record.status);
    EXPECT_EQ(reparsed.error, record.error);
    EXPECT_EQ(reparsed.ok(), record.ok());
  }
  // Spot-check payload fidelity, including doubles.
  const ResultRecord reparsed = parse_result(serialize_result(campaign_rec));
  ASSERT_EQ(reparsed.result.campaign.size(), 2u);
  EXPECT_EQ(reparsed.result.campaign[0].workload, "gsm-like");
  ASSERT_EQ(reparsed.result.campaign[0].outcomes.size(), 2u);
  EXPECT_EQ(reparsed.result.campaign[0].outcomes[1].result.total_cycles,
            1005u);
  EXPECT_EQ(reparsed.result.campaign[0].outcomes[0].result.avg_occupancy_bytes,
            sample_result(4).avg_occupancy_bytes);
  EXPECT_EQ(reparsed.result.campaign[0].outcomes[0].result.codec_ratio,
            0.515625);
}

TEST(Wire, ResultParsingIsStrict) {
  const auto expect_result_error = [](const std::string& text,
                                      const char* needle) {
    try {
      (void)parse_result(text);
      FAIL() << "expected WireError containing '" << needle << "'";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_result_error("apcc.job v4\nend\n", "expected 'apcc.result v4'");
  expect_result_error("apcc.result v4\njob 1\nend\n", "missing 'status'");
  expect_result_error("apcc.result v4\nstatus done\nend\n",
                      "unknown status");
  expect_result_error("apcc.result v4\nstatus error\nend\n",
                      "missing 'error'");
  expect_result_error("apcc.result v4\nstatus ok\nend\n", "missing 'kind'");
  expect_result_error(
      "apcc.result v4\nstatus ok\nkind run\nend\n", "exactly one 'run' line");
  expect_result_error(
      "apcc.result v4\nstatus error\nerror x\nkind run\nrun total-cycles=1\n"
      "end\n",
      "cannot carry a payload");
  // Every non-ok status refuses a payload, not just error.
  expect_result_error(
      "apcc.result v4\nstatus cancelled\nkind run\nrun total-cycles=1\n"
      "end\n",
      "cannot carry a payload");
  expect_result_error(
      "apcc.result v4\nstatus ok\nkind campaign\noutcome index=0 label=a\n"
      "end\n",
      "follow a 'group' line");
  // ...while a bare lifecycle status (no error, no payload) is fine.
  const ResultRecord bare =
      parse_result("apcc.result v4\njob 3\nstatus rejected\nend\n");
  EXPECT_EQ(bare.status, JobStatus::kRejected);
  EXPECT_FALSE(bare.ok());
  EXPECT_EQ(bare.error, "");
}

TEST(Wire, FieldEscapingRoundTrips) {
  for (const std::string& s :
       {std::string(""), std::string("-"), std::string("plain"),
        std::string("with space"), std::string("pct%and=eq"),
        std::string("new\nline"), std::string("#comment-ish"),
        std::string("\x01\x7f bytes")}) {
    EXPECT_EQ(unescape_field(escape_field(s)), s) << escape_field(s);
  }
  EXPECT_EQ(escape_field(""), "-");
  EXPECT_EQ(escape_field("-"), "%2D");
  EXPECT_EQ(escape_field("a b"), "a%20b");
  EXPECT_THROW((void)unescape_field("bad%zz"), apcc::CheckError);
  EXPECT_THROW((void)unescape_field("trunc%2"), apcc::CheckError);
}

TEST(Wire, RecordReaderSplitsStreamsAndPositions) {
  std::istringstream in(
      "# a comment between records\n"
      "\n"
      "apcc.job v4\n"
      "kind run\n"
      "workload gsm-like\n"
      "end\n"
      "\n"
      "apcc.result v4\n"
      "job 1\n"
      "status error\n"
      "error boom\n"
      "end\n");
  RecordReader reader(in);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->is_result);
  EXPECT_EQ(first->first_line, 3u);
  const JobSpec spec = parse_job(first->text, first->first_line);
  EXPECT_EQ(spec.workloads, std::vector<std::string>{"gsm-like"});
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->is_result);
  EXPECT_EQ(second->first_line, 8u);
  const ResultRecord record = parse_result(second->text, second->first_line);
  EXPECT_EQ(record.error, "boom");
  EXPECT_FALSE(reader.next().has_value());

  std::istringstream garbage("apcc.job v4\nkind run\n");
  RecordReader bad(garbage);
  EXPECT_THROW({ (void)bad.next(); }, WireError);

  // The unterminated-record snippet is the header line, intact even
  // when later (longer) body lines forced the line buffer to grow.
  std::istringstream unterminated("apcc.job v4\nkind run\nclient " +
                                  std::string(512, 'x') + "\n");
  RecordReader dangling(unterminated);
  try {
    (void)dangling.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.snippet(), "apcc.job v4");
    EXPECT_EQ(e.line(), 1u);
  }
}

/// A streambuf that surfaces at most `chunk` bytes per underflow --
/// the delivery shape a socket produces, where getline() must cross
/// buffer refills mid-line.
class ChunkedBuf : public std::streambuf {
 public:
  ChunkedBuf(std::string text, std::size_t chunk)
      : text_(std::move(text)), chunk_(chunk) {}

 protected:
  int_type underflow() override {
    if (pos_ >= text_.size()) return traits_type::eof();
    const std::size_t n = std::min(chunk_, text_.size() - pos_);
    char* base = text_.data() + pos_;
    setg(base, base, base + n);
    pos_ += n;
    return traits_type::to_int_type(*base);
  }

 private:
  std::string text_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

TEST(Wire, RecordReaderIsChunkingInvariant) {
  // The stream split into records must not depend on how the bytes
  // arrive: a reader fed 1..7 bytes per refill yields exactly the
  // records (text, absolute line, header kind) of a whole-string pass.
  const std::string text =
      "# comment\n\n" + kJobHeader +
      "\nkind run\nworkload gsm-like\nend\n\n" + kResultHeader +
      "\njob 1\nstatus error\nerror boom\nend\n# trailing\n" + kJobHeader +
      "\nkind sweep\nworkload gsm-like\n"
      "task label=a strategy=on-demand kc=1 kd=1\nend\n";
  std::istringstream whole(text);
  RecordReader reference(whole);
  std::vector<RawRecord> want;
  while (auto record = reference.next()) want.push_back(*record);
  ASSERT_EQ(want.size(), 3u);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{7}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    ChunkedBuf buf(text, chunk);
    std::istream in(&buf);
    RecordReader reader(in);
    std::vector<RawRecord> got;
    while (auto record = reader.next()) got.push_back(*record);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].text, want[i].text);
      EXPECT_EQ(got[i].first_line, want[i].first_line);
      EXPECT_EQ(got[i].is_result, want[i].is_result);
    }
  }

  // Truncation is detected identically under chunked delivery.
  ChunkedBuf truncated(kJobHeader + "\nkind run\n", 2);
  std::istream in(&truncated);
  RecordReader reader(in);
  EXPECT_THROW({ (void)reader.next(); }, WireError);
}

TEST(Wire, GoldenFilesAreFixedPoints) {
  // The checked-in canonical records: parse -> serialize must
  // reproduce every file byte-for-byte (the same gate CI runs through
  // `apcc_cli wire-roundtrip`). Records within a file are separated by
  // one blank line.
  const std::vector<std::string> goldens = {
      "job_run.wire",      "job_sweep.wire",     "job_campaign.wire",
      "result_run.wire",   "result_sweep.wire",  "result_campaign.wire",
      "result_error.wire", "result_rejected.wire",
      "result_cancelled.wire", "jobs_mixed.wire",
      "job_pattern_codecs.wire",
  };
  for (const std::string& name : goldens) {
    const std::string path = std::string(APCC_WIRE_DATA_DIR) + "/" + name;
    std::ifstream file(path);
    ASSERT_TRUE(file.good()) << "missing golden " << path;
    std::ostringstream raw;
    raw << file.rdbuf();
    std::istringstream stream(raw.str());
    RecordReader reader(stream);
    std::string round_tripped;
    bool first = true;
    while (const auto record = reader.next()) {
      if (!first) round_tripped += '\n';
      first = false;
      round_tripped += record->is_result
                           ? serialize_result(
                                 parse_result(record->text, record->first_line))
                           : serialize_job(
                                 parse_job(record->text, record->first_line));
    }
    EXPECT_FALSE(first) << "no records in " << path;
    EXPECT_EQ(round_tripped, raw.str()) << name;
  }
}

}  // namespace
}  // namespace apcc::serving::wire
