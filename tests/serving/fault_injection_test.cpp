// Deterministic robustness coverage, driven by serving::FaultPlan: the
// rollback / cancellation / rejection / deadline / drain machinery only
// fires on failures, so this binary injects them on a fixed, seeded
// schedule and pins the outcomes -- including that every non-ok result
// record is byte-identical at workers 1/2/4 (non-ok records carry fixed
// messages and no payload, so worker count cannot leak into them). The
// TSan CI job runs this binary; CancelStorm is the pool-under-fire
// stress it exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/fault_plan.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "support/assert.hpp"
#include "workloads/suite.hpp"

#include "test_support.hpp"

namespace apcc::serving {
namespace {

using namespace testsupport;

/// A Service with chosen options and the crc-like workload registered.
struct FaultFixture {
  explicit FaultFixture(ServiceOptions options) : service(std::move(options)) {
    id = service.register_workload(
        workloads::make_workload(workloads::WorkloadKind::kCrcLike));
  }
  Service service;
  WorkloadId id = 0;
};

JobSpec run_spec(WorkloadId id) {
  JobSpec spec;
  spec.kind = JobKind::kRun;
  spec.workloads = {"@" + std::to_string(id)};
  return spec;
}

JobSpec sweep_spec(WorkloadId id) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.workloads = {"@" + std::to_string(id)};
  spec.tasks = test_grid();
  return spec;
}

/// Parks the first task boundary until release(); later boundaries pass
/// straight through. The deterministic way to hold a job "running"
/// while the test inspects queue depth, admission, or shutdown.
struct BoundaryGate {
  std::shared_ptr<const FaultPlan> plan() {
    auto p = std::make_shared<FaultPlan>();
    p->on_boundary = [this](std::size_t n) {
      if (n != 1) return;
      std::unique_lock<std::mutex> lock(mutex_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    };
    return p;
  }
  void await_parked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return parked_; });
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool open_ = false;
};

TEST(FaultInjection, OverLimitSubmitIsRejectedNotStalled) {
  BoundaryGate gate;
  ServiceOptions options;
  options.workers = 1;
  options.limits.max_queued_jobs = 1;
  options.faults = gate.plan();
  FaultFixture fx(options);

  const auto busy = fx.service.submit(run_spec(fx.id));
  gate.await_parked();  // the one queue slot is provably occupied

  const auto rejected = fx.service.submit(run_spec(fx.id));
  EXPECT_TRUE(rejected.ready());  // resolved at admission, no pool trip
  const JobResult& result = rejected.wait();
  EXPECT_EQ(result.status, JobStatus::kRejected);
  EXPECT_EQ(result.error, "rejected: job limit reached (1 jobs in flight)");
  EXPECT_FALSE(rejected.cancel());  // nothing to cancel: never enqueued

  gate.release();
  EXPECT_TRUE(busy.wait().ok());  // the occupant was never disturbed

  // The freed slot admits again.
  EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
}

TEST(FaultInjection, PerClientLimitRejectsOnlyThatClient) {
  BoundaryGate gate;
  ServiceOptions options;
  options.workers = 1;
  options.limits.max_queued_per_client = 1;
  options.faults = gate.plan();
  FaultFixture fx(options);

  JobSpec greedy = run_spec(fx.id);
  greedy.client = "greedy";
  const auto busy = fx.service.submit(greedy);
  gate.await_parked();

  const auto rejected = fx.service.submit(greedy);
  EXPECT_EQ(rejected.wait().status, JobStatus::kRejected);
  EXPECT_EQ(rejected.wait().error,
            "rejected: client limit reached "
            "(1 jobs in flight for client 'greedy')");

  JobSpec other = run_spec(fx.id);
  other.client = "patient";
  const auto admitted = fx.service.submit(other);  // other tags unaffected
  gate.release();
  EXPECT_TRUE(admitted.wait().ok());
  EXPECT_TRUE(busy.wait().ok());
}

TEST(FaultInjection, InjectedTaskThrowFailsTheJobDeterministically) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = 42;
    plan->throw_in_task = 1;
    ServiceOptions options;
    options.workers = workers;
    options.faults = plan;
    FaultFixture fx(options);

    // kError rethrows on wait() -- the original exception, unwrapped.
    const auto handle = fx.service.submit(sweep_spec(fx.id));
    try {
      (void)handle.wait();
      FAIL() << "expected the injected failure to rethrow";
    } catch (const apcc::CheckError& e) {
      EXPECT_STREQ(e.what(),
                   "injected fault: task throw at boundary 1 (seed 42)");
    }

    // Failure is scoped to the job: the service keeps serving.
    EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
  }
}

TEST(FaultInjection, ImageBuildFaultRollsBackAndNextClaimRebuilds) {
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 7;
  plan->fail_image_build = 1;
  ServiceOptions options;
  options.workers = 2;
  options.faults = plan;
  FaultFixture fx(options);

  const auto poisoned = fx.service.submit(run_spec(fx.id));
  try {
    (void)poisoned.wait();
    FAIL() << "expected the injected build failure to rethrow";
  } catch (const apcc::CheckError& e) {
    EXPECT_STREQ(e.what(), "injected fault: image build 1 failed (seed 7)");
  }

  // The claim rolled back to idle, so the retry claims (and completes)
  // the same build -- and its result is byte-identical to the direct
  // path, proving the rollback left no partial state behind.
  const auto retried = fx.service.submit(run_spec(fx.id));
  expect_identical(retried.wait().run, reference_systems()[0].run());

  const auto stats = fx.service.cache_stats();
  EXPECT_EQ(stats.images.built, 1u);    // only the successful build
  EXPECT_EQ(stats.images.misses, 2u);   // both claims count as misses
  EXPECT_EQ(stats.images.rebuilds, 1u); // the retry re-opened a failure
}

TEST(FaultInjection, ExpiredDeadlineResolvesDeadlineExceeded) {
  auto plan = std::make_shared<FaultPlan>();
  plan->expire_deadlines = true;
  ServiceOptions options;
  options.workers = 2;
  options.faults = plan;
  FaultFixture fx(options);

  // Per-spec deadline.
  JobSpec spec = sweep_spec(fx.id);
  spec.deadline_ms = 5000;
  const auto handle = fx.service.submit(std::move(spec));
  const JobResult& expired = handle.wait();
  EXPECT_EQ(expired.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(expired.error, "job deadline exceeded");
  EXPECT_TRUE(expired.sweep.empty());

  // A job with no deadline never reads the clock: unaffected.
  EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
}

TEST(FaultInjection, DefaultDeadlineAppliesWhenTheSpecCarriesNone) {
  auto plan = std::make_shared<FaultPlan>();
  plan->expire_deadlines = true;
  ServiceOptions options;
  options.workers = 1;
  options.limits.default_deadline_ms = 1000;
  options.faults = plan;
  FaultFixture fx(options);

  const auto handle = fx.service.submit(run_spec(fx.id));
  const JobResult& expired = handle.wait();
  EXPECT_EQ(expired.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(expired.error, "job deadline exceeded");
}

TEST(FaultInjection, NonOkRecordsAreByteIdenticalAcrossWorkerCounts) {
  // The determinism contract for the robustness statuses: serialize
  // each non-ok outcome as the serve loop would and require the bytes
  // to agree at every worker count (fixed messages, no payload --
  // nothing execution-order-dependent can leak into the record).
  // Exactly the serve loop's mapping: structured non-ok statuses pass
  // through, a rethrown failure becomes a kError record with e.what().
  const auto record_for = [](const JobHandle<JobResult>& handle) {
    wire::ResultRecord record;
    record.job = 1;
    record.client = "tier-1";
    try {
      const JobResult& result = handle.wait();
      record.status = result.status;
      record.error = result.error;
    } catch (const std::exception& e) {
      record.status = JobStatus::kError;
      record.error = e.what();
    }
    return wire::serialize_result(record);
  };

  std::vector<std::string> cancelled_records;
  std::vector<std::string> failed_records;
  std::vector<std::string> expired_records;
  for (const unsigned workers : {1u, 2u, 4u}) {
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->cancel_at_boundary = 1;
      ServiceOptions options;
      options.workers = workers;
      options.faults = plan;
      FaultFixture fx(options);
      const auto handle = fx.service.submit(sweep_spec(fx.id));
      const JobResult& result = handle.wait();
      EXPECT_EQ(result.status, JobStatus::kCancelled);
      EXPECT_TRUE(result.sweep.empty());
      cancelled_records.push_back(record_for(handle));
    }
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->seed = 11;
      plan->throw_in_task = 1;
      ServiceOptions options;
      options.workers = workers;
      options.faults = plan;
      FaultFixture fx(options);
      failed_records.push_back(record_for(fx.service.submit(sweep_spec(fx.id))));
    }
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->expire_deadlines = true;
      ServiceOptions options;
      options.workers = workers;
      options.faults = plan;
      FaultFixture fx(options);
      JobSpec spec = sweep_spec(fx.id);
      spec.deadline_ms = 100;
      expired_records.push_back(
          record_for(fx.service.submit(std::move(spec))));
    }
  }
  for (const auto* records :
       {&cancelled_records, &failed_records, &expired_records}) {
    ASSERT_EQ(records->size(), 3u);
    EXPECT_EQ((*records)[0], (*records)[1]);
    EXPECT_EQ((*records)[0], (*records)[2]);
  }
}

TEST(FaultInjection, InjectedThrowInsideABatchFailsJobButSiblingsFinish) {
  // The whole 12-task grid runs as ONE lockstep batch item. The throw
  // at boundary 2 must fail only that cell in place: every other cell
  // still reaches its own boundary (counted below) and runs to
  // completion, and the first failure is rethrown after the batch --
  // the same job-level kError the per-engine path produces, with a
  // byte-identical record at every worker count.
  std::vector<std::string> records;
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = 42;
    plan->throw_in_task = 2;
    auto boundaries = std::make_shared<std::atomic<std::size_t>>(0);
    plan->on_boundary = [boundaries](std::size_t) {
      boundaries->fetch_add(1, std::memory_order_relaxed);
    };
    ServiceOptions options;
    options.workers = workers;
    options.faults = plan;
    FaultFixture fx(options);

    JobSpec spec = sweep_spec(fx.id);
    spec.batch_cells = static_cast<std::uint32_t>(spec.tasks.size());
    const std::size_t cells = spec.tasks.size();
    const auto handle = fx.service.submit(std::move(spec));
    try {
      (void)handle.wait();
      FAIL() << "expected the injected failure to rethrow";
    } catch (const apcc::CheckError& e) {
      EXPECT_STREQ(e.what(),
                   "injected fault: task throw at boundary 2 (seed 42)");
    }
    // Every sibling cell crossed its own boundary after cell 2 threw.
    EXPECT_EQ(boundaries->load(), cells);

    wire::ResultRecord record;
    record.job = 1;
    record.client = "tier-1";
    try {
      (void)handle.wait();
    } catch (const std::exception& e) {
      record.status = JobStatus::kError;
      record.error = e.what();
    }
    records.push_back(wire::serialize_result(record));

    // Failure is scoped to the job: the service keeps serving.
    EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], records[1]);
  EXPECT_EQ(records[0], records[2]);
}

TEST(FaultInjection, CancelAtBoundaryInsideABatchResolvesCancelled) {
  // Self-cancel fired from a cell boundary in the middle of a batch:
  // cells admitted before it finish their lockstep run (cancellation is
  // only checked at batch boundaries), later cells retire quietly, and
  // the job resolves kCancelled with an empty payload -- byte-identical
  // records at every worker count, exactly like the per-engine path.
  std::vector<std::string> records;
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    auto plan = std::make_shared<FaultPlan>();
    plan->cancel_at_boundary = 2;
    ServiceOptions options;
    options.workers = workers;
    options.faults = plan;
    FaultFixture fx(options);

    JobSpec spec = sweep_spec(fx.id);
    spec.batch_cells = 4;  // 12 tasks -> three 4-cell batch items
    const auto handle = fx.service.submit(std::move(spec));
    const JobResult& result = handle.wait();
    EXPECT_EQ(result.status, JobStatus::kCancelled);
    EXPECT_TRUE(result.sweep.empty());

    wire::ResultRecord record;
    record.job = 1;
    record.client = "tier-1";
    record.status = result.status;
    record.error = result.error;
    records.push_back(wire::serialize_result(record));

    EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], records[1]);
  EXPECT_EQ(records[0], records[2]);
}

TEST(FaultInjection, HandleCancelResolvesQueuedJobImmediately) {
  BoundaryGate gate;
  ServiceOptions options;
  options.workers = 1;
  options.faults = gate.plan();
  FaultFixture fx(options);

  const auto busy = fx.service.submit(run_spec(fx.id));
  gate.await_parked();  // the lone worker is pinned: job 2 stays queued

  const auto queued = fx.service.submit(sweep_spec(fx.id));
  EXPECT_TRUE(queued.cancel());
  EXPECT_TRUE(queued.ready());  // resolved without a worker
  const JobResult& result = queued.wait();
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.error, "job cancelled");
  EXPECT_FALSE(queued.cancel());  // second cancel: nothing left

  gate.release();
  EXPECT_TRUE(busy.wait().ok());
  EXPECT_TRUE(fx.service.submit(run_spec(fx.id)).wait().ok());
}

TEST(FaultInjection, ShutdownDrainsInFlightAndCancelsQueued) {
  BoundaryGate gate;
  ServiceOptions options;
  options.workers = 1;
  options.faults = gate.plan();
  FaultFixture fx(options);

  const auto in_flight = fx.service.submit(run_spec(fx.id));
  gate.await_parked();
  const auto queued = fx.service.submit(run_spec(fx.id));

  std::thread closer([&] { fx.service.shutdown(); });
  // The still-queued job fails fast as cancelled -- while the in-flight
  // job is provably still parked on the gate.
  const JobResult& cancelled = queued.wait();
  EXPECT_EQ(cancelled.status, JobStatus::kCancelled);
  EXPECT_FALSE(in_flight.ready());

  gate.release();
  closer.join();
  EXPECT_TRUE(in_flight.wait().ok());  // drained, not dropped

  // Post-shutdown submissions resolve as rejected, never stall.
  const auto late = fx.service.submit(run_spec(fx.id));
  EXPECT_EQ(late.wait().status, JobStatus::kRejected);
  EXPECT_EQ(late.wait().error, "rejected: service is shutting down");
}

TEST(FaultInjection, ShutdownDrainDeadlineCancelsStragglers) {
  BoundaryGate gate;
  ServiceOptions options;
  options.workers = 1;
  options.faults = gate.plan();
  FaultFixture fx(options);

  // The parked item ignores the drain deadline until the gate opens;
  // shutdown must cancel it cooperatively and still resolve its handle.
  const auto stuck = fx.service.submit(sweep_spec(fx.id));
  gate.await_parked();

  // The parked item pins the job, so the 1ms drain deadline must
  // elapse and shutdown must fall back to cooperative cancellation --
  // observable through cancel_requested() *before* the gate opens, so
  // the released cell deterministically sees the cancel at its
  // boundary re-check and the job can never complete normally.
  std::thread closer(
      [&] { fx.service.shutdown(std::chrono::milliseconds(1)); });
  while (!stuck.cancel_requested()) std::this_thread::yield();
  gate.release();
  closer.join();
  const JobResult& result = stuck.wait();
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_TRUE(result.sweep.empty());
}

TEST(FaultInjection, CancelStormKeepsPoolServiceable) {
  // Satellite stress (TSan runs this binary): many queued + running
  // jobs cancelled mid-flight while new jobs are being submitted. The
  // pool must stay serviceable and every handle must resolve -- as ok
  // or as cancelled, nothing else, nothing stuck.
  ServiceOptions options;
  options.workers = 4;
  FaultFixture fx(options);

  std::vector<JobHandle<JobResult>> handles;
  for (int i = 0; i < 24; ++i) {
    handles.push_back(fx.service.submit(run_spec(fx.id)));
  }
  std::vector<JobHandle<JobResult>> extra;
  std::thread canceller([&] {
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      (void)handles[i].cancel();
    }
  });
  std::thread submitter([&] {
    for (int i = 0; i < 8; ++i) {
      extra.push_back(fx.service.submit(run_spec(fx.id)));
    }
  });
  canceller.join();
  submitter.join();

  const sim::RunResult direct = reference_systems()[0].run();
  const auto check = [&](const JobHandle<JobResult>& handle) {
    const JobResult& result = handle.wait();  // every handle resolves
    if (result.status == JobStatus::kCancelled) {
      EXPECT_EQ(result.error, "job cancelled");
    } else {
      ASSERT_EQ(result.status, JobStatus::kOk);
      expect_identical(result.run, direct);  // cancellation never
                                             // corrupts a completed run
    }
  };
  for (const auto& handle : handles) check(handle);
  for (const auto& handle : extra) check(handle);

  // Serviceable afterwards.
  expect_identical(fx.service.submit(run_spec(fx.id)).wait().run, direct);
}

}  // namespace
}  // namespace apcc::serving
