// Service differentials: a job submitted through serving::Service must
// produce outcomes byte-identical to the equivalent direct
// CodeCompressionSystem::run / run_sweep / core::run_campaign call --
// cold cache and warm cache, shared pool, workers 1/2/4 -- while the
// artifact cache deduplicates builds and geometry materialization stays
// off the submitting thread. Two campaigns in flight on one Service
// must interleave without ordering or outcome divergence (the TSan CI
// job runs this binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/system.hpp"
#include "serving/service.hpp"
#include "support/assert.hpp"
#include "workloads/suite.hpp"

#include "test_support.hpp"

namespace apcc::serving {
namespace {

using namespace testsupport;

TEST(Service, RunJobMatchesDirectRunColdAndWarm) {
  const sim::RunResult direct = reference_systems()[0].run();
  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const bool share : {true, false}) {
      Fixture fx(workers);
      RunJob job;
      job.workload = fx.ids[0];
      job.share_frontiers = share;
      SCOPED_TRACE(std::to_string(workers) + " workers, share=" +
                   std::to_string(share));
      // Cold: first submit builds the image (and geometry, if shared).
      expect_identical(fx.service.submit(job).wait(), direct);
      // Warm: resubmission borrows every artifact, same bytes out.
      expect_identical(fx.service.submit(job).wait(), direct);
      const auto stats = fx.service.cache_stats();
      EXPECT_EQ(stats.images.built, 1u);
      EXPECT_EQ(stats.images.borrows, 1u);
      EXPECT_EQ(stats.images.evictions, 0u);  // no budget, no eviction
      if (share) {
        EXPECT_EQ(stats.frontiers.built, 1u);
        EXPECT_EQ(stats.frontiers.borrows, 1u);
        EXPECT_EQ(stats.frontiers.evictions, 0u);
      } else {
        EXPECT_EQ(stats.frontiers.built, 0u);
      }
    }
  }
}

TEST(Service, SweepJobMatchesDirectRunSweep) {
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);
  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const bool share : {true, false}) {
      Fixture fx(workers);
      SweepJob job;
      job.workload = fx.ids[0];
      job.tasks = grid;
      job.share_frontiers = share;
      const auto outcomes = fx.service.submit(job).wait();
      SCOPED_TRACE(std::to_string(workers) + " workers, share=" +
                   std::to_string(share));
      ASSERT_EQ(outcomes.size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        expect_identical(direct[i], outcomes[i]);
      }
    }
  }
}

TEST(Service, CampaignJobMatchesDirectRunCampaign) {
  const auto grid = test_grid();
  std::vector<core::CampaignEntry> entries;
  const auto& systems = reference_systems();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    entries.push_back({workloads::workload_name(kinds_under_test()[i]),
                       &systems[i]});
  }
  sweep::CampaignOptions sequential;
  sequential.workers = 1;
  const auto direct = core::run_campaign(entries, grid, sequential);

  for (const unsigned workers : {1u, 2u, 4u}) {
    Fixture fx(workers);
    CampaignJob job;
    job.workloads = fx.ids;
    job.grid = grid;
    const auto results = fx.service.submit(job).wait();
    SCOPED_TRACE(std::to_string(workers) + " workers");
    ASSERT_EQ(results.size(), direct.size());
    for (std::size_t w = 0; w < direct.size(); ++w) {
      EXPECT_EQ(results[w].workload, direct[w].workload);
      ASSERT_EQ(results[w].outcomes.size(), direct[w].outcomes.size());
      for (std::size_t i = 0; i < direct[w].outcomes.size(); ++i) {
        expect_identical(direct[w].outcomes[i], results[w].outcomes[i]);
      }
    }
  }
}

TEST(Service, TwoCampaignsInFlightInterleaveWithoutDivergence) {
  // Two different grids over the same workloads, both submitted before
  // either is waited on: the scheduler interleaves their cells on one
  // pool, the artifact cache serves both, and each result must still be
  // byte-identical to its own direct sequential reference.
  const auto grid_a = test_grid();
  auto grid_b = test_grid();
  grid_b.resize(grid_b.size() / 2);
  for (auto& task : grid_b) {
    task.config.policy.predictor = runtime::PredictorKind::kStatic;
    task.label += "/static";
  }

  std::vector<core::CampaignEntry> entries;
  const auto& systems = reference_systems();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    entries.push_back({workloads::workload_name(kinds_under_test()[i]),
                       &systems[i]});
  }
  sweep::CampaignOptions sequential;
  sequential.workers = 1;
  const auto direct_a = core::run_campaign(entries, grid_a, sequential);
  const auto direct_b = core::run_campaign(entries, grid_b, sequential);

  for (const unsigned workers : {2u, 4u}) {
    Fixture fx(workers);
    CampaignJob job_a;
    job_a.workloads = fx.ids;
    job_a.grid = grid_a;
    CampaignJob job_b;
    job_b.workloads = fx.ids;
    job_b.grid = grid_b;
    const auto handle_a = fx.service.submit(job_a);
    const auto handle_b = fx.service.submit(job_b);
    EXPECT_NE(handle_a.id(), handle_b.id());
    const auto results_b = handle_b.wait();  // wait out of order on purpose
    const auto results_a = handle_a.wait();
    SCOPED_TRACE(std::to_string(workers) + " workers");
    const auto check = [](const std::vector<sweep::CampaignResult>& want,
                          const std::vector<sweep::CampaignResult>& got) {
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t w = 0; w < want.size(); ++w) {
        EXPECT_EQ(got[w].workload, want[w].workload);
        ASSERT_EQ(got[w].outcomes.size(), want[w].outcomes.size());
        for (std::size_t i = 0; i < want[w].outcomes.size(); ++i) {
          expect_identical(want[w].outcomes[i], got[w].outcomes[i]);
        }
      }
    };
    check(direct_a, results_a);
    check(direct_b, results_b);
  }
}

TEST(Service, GeometryMaterializesOffTheSubmittingThread) {
  Fixture fx(2);
  SweepJob job;
  job.workload = fx.ids[0];
  job.tasks = test_grid();
  (void)fx.service.submit(job).wait();
  // Every k the grid touched has a ready slot whose builder was a pool
  // worker, never this (submitting) thread.
  bool saw_slot = false;
  for (const std::uint32_t k : {1u, 4u}) {
    const runtime::SharedFrontier* slot =
        fx.service.frontier_slot(fx.ids[0], k);
    ASSERT_NE(slot, nullptr) << "k=" << k;
    EXPECT_TRUE(slot->ready());
    EXPECT_NE(slot->builder(), std::this_thread::get_id());
    saw_slot = true;
  }
  EXPECT_TRUE(saw_slot);
  EXPECT_EQ(fx.service.frontier_slot(fx.ids[0], 99u), nullptr);
}

TEST(Service, ArtifactCacheDeduplicatesAcrossJobs) {
  Fixture fx(2);
  SweepJob job;
  job.workload = fx.ids[0];
  job.tasks = test_grid();
  const auto first = fx.service.submit(job);
  const auto second = fx.service.submit(job);
  (void)first.wait();
  (void)second.wait();
  const auto stats = fx.service.cache_stats();
  // One image and one geometry cache per distinct key, no matter how
  // many cells or jobs borrowed them.
  EXPECT_EQ(stats.images.built, 1u);
  EXPECT_EQ(stats.frontiers.built, 2u);  // k=1 and k=4
  EXPECT_EQ(stats.images.borrows + stats.images.built,
            2 * job.tasks.size());
  EXPECT_EQ(stats.frontiers.borrows + stats.frontiers.built,
            2 * job.tasks.size());
  // The hit/miss ledger tells the same story: every build was a miss,
  // every borrow a hit, and nothing was ever rebuilt.
  EXPECT_EQ(stats.images.misses, stats.images.built);
  EXPECT_EQ(stats.images.hits, stats.images.borrows);
  EXPECT_EQ(stats.frontiers.misses, stats.frontiers.built);
  EXPECT_EQ(stats.frontiers.hits, stats.frontiers.borrows);
  EXPECT_EQ(stats.images.rebuilds, 0u);
  EXPECT_EQ(stats.frontiers.rebuilds, 0u);
  // The default budget is unbounded -- these are exactly the counters
  // the pre-budget Service produced, and nothing was ever evicted
  // (the acceptance pin for "budget 0 reproduces today's behaviour").
  EXPECT_EQ(stats.images.evictions, 0u);
  EXPECT_EQ(stats.frontiers.evictions, 0u);
  EXPECT_EQ(stats.images.evicted_bytes, 0u);
  EXPECT_EQ(stats.frontiers.evicted_bytes, 0u);
  EXPECT_EQ(stats.images.entries, 1u);
  EXPECT_EQ(stats.frontiers.entries, 2u);
}

TEST(Service, RunResultIdenticalAcrossCodecs) {
  // Image artifacts are keyed by codec: jobs with different codecs get
  // different images, each matching the direct path for that codec.
  for (const auto codec :
       {compress::CodecKind::kSharedHuffman, compress::CodecKind::kLzss,
        compress::CodecKind::kFpc, compress::CodecKind::kBdi,
        compress::CodecKind::kAdaptive}) {
    core::SystemConfig config;
    config.codec = codec;
    const auto direct = core::CodeCompressionSystem::from_workload(
                            workloads::make_workload(kinds_under_test()[0]),
                            config)
                            .run();
    Fixture fx(2);
    RunJob job;
    job.workload = fx.ids[0];
    job.config = config;
    expect_identical(fx.service.submit(job).wait(), direct);
  }
}

TEST(Service, FailurePropagatesAndServiceSurvives) {
  Fixture fx(2);
  SweepJob poisoned;
  poisoned.workload = fx.ids[0];
  poisoned.tasks = test_grid();
  // A budget smaller than any executed block: the engine's placement
  // loop finds no victim and throws -- from a pool worker, which must
  // surface on wait() without wedging the pool.
  poisoned.tasks[1].config.policy.memory_budget = 1;
  const auto bad = fx.service.submit(poisoned);
  EXPECT_THROW({ (void)bad.wait(); }, apcc::CheckError);

  RunJob job;
  job.workload = fx.ids[0];
  expect_identical(fx.service.submit(job).wait(),
                   reference_systems()[0].run());
}

TEST(Service, ImageBuildFailureRollsBackTheSlotWithoutDeadlock) {
  // An artifact build that throws (unknown codec kind -> make_codec
  // asserts) must roll the claim-build handshake back: concurrent
  // waiters on the same slot re-claim and surface the failure
  // themselves instead of blocking on a ready flip that never comes,
  // and the slot stays usable for later (valid) jobs.
  Fixture fx(2);
  RunJob bad;
  bad.workload = fx.ids[0];
  bad.config.codec = static_cast<compress::CodecKind>(250);
  const auto first = fx.service.submit(bad);
  const auto second = fx.service.submit(bad);
  EXPECT_THROW({ (void)first.wait(); }, apcc::AssertionError);
  EXPECT_THROW({ (void)second.wait(); }, apcc::AssertionError);

  RunJob good;
  good.workload = fx.ids[0];
  expect_identical(fx.service.submit(good).wait(),
                   reference_systems()[0].run());
}

TEST(Service, SubmitValidatesWorkloadIds) {
  Fixture fx(1);
  RunJob run;
  run.workload = 99;
  EXPECT_THROW({ (void)fx.service.submit(run); }, apcc::CheckError);
  CampaignJob campaign;
  campaign.workloads = {fx.ids[0], 99};
  campaign.grid = test_grid();
  EXPECT_THROW({ (void)fx.service.submit(campaign); }, apcc::CheckError);
}

TEST(Service, EmptyJobsRetireImmediately) {
  Fixture fx(1);
  SweepJob sweep_job;
  sweep_job.workload = fx.ids[0];
  const auto sweep_handle = fx.service.submit(sweep_job);
  EXPECT_TRUE(sweep_handle.ready());
  EXPECT_TRUE(sweep_handle.wait().empty());

  CampaignJob campaign;
  campaign.workloads = fx.ids;
  const auto campaign_handle = fx.service.submit(campaign);
  const auto& results = campaign_handle.wait();
  ASSERT_EQ(results.size(), fx.ids.size());
  for (std::size_t w = 0; w < results.size(); ++w) {
    EXPECT_EQ(results[w].workload, fx.service.workload(fx.ids[w]).name);
    EXPECT_TRUE(results[w].outcomes.empty());
  }
}

TEST(Service, HandlesAreReusableAndShareState) {
  Fixture fx(1);
  RunJob job;
  job.workload = fx.ids[0];
  const auto handle = fx.service.submit(job);
  const auto copy = handle;
  expect_identical(handle.wait(), copy.wait());
  EXPECT_TRUE(copy.ready());
  EXPECT_EQ(handle.id(), copy.id());
  EXPECT_FALSE(JobHandle<sim::RunResult>{}.valid());
}

TEST(Service, DrainWaitsForEverything) {
  Fixture fx(2);
  std::vector<JobHandle<sim::RunResult>> handles;
  for (int i = 0; i < 4; ++i) {
    RunJob job;
    job.workload = fx.ids[i % fx.ids.size()];
    handles.push_back(fx.service.submit(job));
  }
  fx.service.drain();
  for (const auto& handle : handles) EXPECT_TRUE(handle.ready());
}

TEST(Service, RegisterWhileJobsInFlight) {
  Fixture fx(2);
  SweepJob job;
  job.workload = fx.ids[0];
  job.tasks = test_grid();
  const auto handle = fx.service.submit(job);
  const auto late = fx.service.register_workload(
      workloads::make_workload(workloads::WorkloadKind::kG721Like));
  RunJob run;
  run.workload = late;
  const auto late_result = fx.service.submit(run).wait();
  (void)handle.wait();
  expect_identical(late_result,
                   core::CodeCompressionSystem::from_workload(
                       workloads::make_workload(
                           workloads::WorkloadKind::kG721Like))
                       .run());
}

}  // namespace
}  // namespace apcc::serving
