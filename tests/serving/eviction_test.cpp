// Budgeted artifact cache, end to end: eviction under byte budgets
// never changes any job outcome -- only when artifacts are rebuilt.
// These tests drive the Service with budgets small enough to force
// constant thrash and pin four things:
//
//  * differential byte-identity: the same sweep under a tiny budget
//    matches the direct one-shot path at several worker counts and
//    lockstep batch widths, while the eviction counters prove the
//    budget machinery actually ran;
//  * pinning: artifacts borrowed by in-flight cells survive any
//    eviction pressure (a parked batch holds its leases while another
//    job thrashes the cache);
//  * fault interaction: an injected build failure under eviction
//    pressure still rolls back cleanly, and the rebuilt artifact is
//    byte-identical;
//  * the fault plan's evict_at_publish forced flush drives the
//    evict-then-rebuild path deterministically, without budget tuning.
//
// The whole binary runs under TSan in CI, so the pin refcounts and the
// publish-time eviction pass get race coverage for free.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serving/fault_plan.hpp"
#include "serving/service.hpp"
#include "workloads/suite.hpp"

#include "test_support.hpp"

namespace apcc::serving {
namespace {

using namespace testsupport;

ServiceOptions budgeted(unsigned workers, CacheBudget budget) {
  ServiceOptions options;
  options.workers = workers;
  options.cache_budget = budget;
  return options;
}

/// Parks the task boundary with ordinal `park_at` until release();
/// every other boundary passes straight through. Unlike the
/// fault-injection BoundaryGate (which parks boundary 1), this lets a
/// batch run its first cell -- acquiring and pinning artifacts -- and
/// then hold them parked while the test thrashes the cache.
struct ParkAt {
  explicit ParkAt(std::size_t park_at) : park_at_(park_at) {}

  std::shared_ptr<const FaultPlan> plan() {
    auto p = std::make_shared<FaultPlan>();
    p->on_boundary = [this](std::size_t n) {
      if (n != park_at_) return;
      std::unique_lock<std::mutex> lock(mutex_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    };
    return p;
  }
  void await_parked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return parked_; });
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  const std::size_t park_at_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool open_ = false;
};

TEST(Eviction, TinyBudgetSweepIsByteIdenticalToDirect) {
  // The acceptance differential: per-kind budgets of one byte mean
  // every publish finds the cache over budget, so every unpinned
  // artifact is evicted as soon as a new one lands -- maximum thrash.
  // Outcomes must still match the direct one-shot sweep byte for byte
  // at every worker count and batch width.
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);
  CacheBudget tiny;
  tiny.image_bytes = 1;
  tiny.frontier_bytes = 1;
  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const std::uint32_t batch : {1u, 16u}) {
      SCOPED_TRACE(std::to_string(workers) + " workers, batch " +
                   std::to_string(batch));
      Fixture fx(budgeted(workers, tiny));
      SweepJob job;
      job.workload = fx.ids[0];
      job.tasks = grid;
      job.batch_cells = batch;
      const auto outcomes = fx.service.submit(job).wait();
      ASSERT_EQ(outcomes.size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        expect_identical(outcomes[i], direct[i]);
      }
      const auto stats = fx.service.cache_stats();
      // Eviction changes counters, never bytes: every rebuild is also
      // a fresh miss, so misses == built still holds (no build failed).
      EXPECT_EQ(stats.frontiers.misses, stats.frontiers.built);
      EXPECT_EQ(stats.images.misses, stats.images.built);
      if (workers == 1 && batch == 1) {
        // One worker runs the cells in grid order, which alternates
        // k=1 / k=4, so each geometry publish finds the other key
        // resident and unpinned: guaranteed thrash. (At higher worker
        // counts concurrent cells may pin both keys at every publish,
        // so only byte-identity is deterministic; at batch 16 one work
        // item leases all 12 cells' artifacts at once, so everything is
        // pinned at publish time and eviction correctly finds no
        // victim.)
        EXPECT_GT(stats.frontiers.evictions, 0u);
        EXPECT_GT(stats.frontiers.evicted_bytes, 0u);
        EXPECT_GT(stats.frontiers.built, 2u);  // rebuilt after eviction
      }
    }
  }
}

TEST(Eviction, SharedTotalBudgetIsByteIdenticalToDirect) {
  // Same differential through the shared-ceiling pass (total_bytes
  // covers both kinds at once; per-kind ceilings unset).
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);
  CacheBudget shared;
  shared.total_bytes = 1;
  Fixture fx(budgeted(1, shared));
  SweepJob job;
  job.workload = fx.ids[0];
  job.tasks = grid;
  const auto outcomes = fx.service.submit(job).wait();
  ASSERT_EQ(outcomes.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    expect_identical(outcomes[i], direct[i]);
  }
  EXPECT_GT(fx.service.cache_stats().frontiers.evictions, 0u);
}

TEST(Eviction, ImageEvictionAcrossWorkloadsRebuildsByteIdentical) {
  // Two workloads, one-byte image ceiling, one worker: workload B's
  // image publish evicts workload A's (unpinned) image, and vice versa
  // on the rebuild -- the deterministic image-eviction sequence.
  CacheBudget tiny;
  tiny.image_bytes = 1;
  Fixture fx(budgeted(1, tiny));
  const sim::RunResult direct_a = reference_systems()[0].run();
  const sim::RunResult direct_b = reference_systems()[1].run();

  expect_identical(fx.service.submit(RunJob{fx.ids[0]}).wait(), direct_a);
  expect_identical(fx.service.submit(RunJob{fx.ids[1]}).wait(), direct_b);
  {
    // B's publish found A's image resident and unpinned: evicted.
    const auto stats = fx.service.cache_stats();
    EXPECT_EQ(stats.images.built, 2u);
    EXPECT_EQ(stats.images.evictions, 1u);
    EXPECT_GT(stats.images.evicted_bytes, 0u);
    EXPECT_EQ(stats.images.entries, 1u);  // only B resident
  }
  // A transparently rebuilds -- an ordinary miss, not a failure-path
  // rebuild -- and the rebuilt image serves byte-identical results.
  expect_identical(fx.service.submit(RunJob{fx.ids[0]}).wait(), direct_a);
  const auto stats = fx.service.cache_stats();
  EXPECT_EQ(stats.images.built, 3u);
  EXPECT_EQ(stats.images.misses, 3u);
  EXPECT_EQ(stats.images.rebuilds, 0u);  // eviction is not a failure
  EXPECT_EQ(stats.images.evictions, 2u);  // A's rebuild evicted B
  EXPECT_EQ(stats.images.entries, 1u);
}

TEST(Eviction, PinnedArtifactsSurviveWhileBorrowed) {
  // Job A: one 12-cell lockstep batch on workload 0, parked at its
  // second cell's boundary -- cell 1's leases (image + k=1 geometry)
  // are live. Job B then thrashes the cache on workload 1 under
  // one-byte ceilings. A's pinned artifacts must survive every
  // eviction pass B triggers, and A must complete byte-identical after
  // release.
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct_a = reference_systems()[0].run_sweep(grid, sequential);
  const auto direct_b = reference_systems()[1].run_sweep(grid, sequential);

  ParkAt gate(2);  // boundary 1 = A's first cell; 2 = A's second
  CacheBudget tiny;
  tiny.image_bytes = 1;
  tiny.frontier_bytes = 1;
  ServiceOptions options = budgeted(2, tiny);
  options.faults = gate.plan();
  Fixture fx(options);

  SweepJob job_a;
  job_a.workload = fx.ids[0];
  job_a.tasks = grid;
  job_a.batch_cells = 16;  // one item leases every cell it admits
  const auto handle_a = fx.service.submit(job_a);
  gate.await_parked();

  // While A is parked, its first cell's artifacts are pinned and
  // resident (the k=1 geometry slot stays ready through everything B
  // does below).
  const runtime::SharedFrontier* slot_a =
      fx.service.frontier_slot(fx.ids[0], 1);
  ASSERT_NE(slot_a, nullptr);
  EXPECT_TRUE(slot_a->ready());
  EXPECT_GT(slot_a->pins(), 0u);

  SweepJob job_b;
  job_b.workload = fx.ids[1];
  job_b.tasks = grid;
  const auto outcomes_b = fx.service.submit(job_b).wait();
  ASSERT_EQ(outcomes_b.size(), direct_b.size());
  for (std::size_t i = 0; i < direct_b.size(); ++i) {
    expect_identical(outcomes_b[i], direct_b[i]);
  }

  {
    const auto stats = fx.service.cache_stats();
    // B thrashed: its k-alternating publishes evicted its own unpinned
    // geometry...
    EXPECT_GT(stats.frontiers.evictions, 0u);
    // ...but never A's pinned artifacts: both images resident (A's
    // pinned, B's just published), A's k=1 geometry still ready.
    EXPECT_EQ(stats.images.evictions, 0u);
    EXPECT_EQ(stats.images.entries, 2u);
    EXPECT_TRUE(slot_a->ready());
  }

  gate.release();
  const auto outcomes_a = handle_a.wait();
  ASSERT_EQ(outcomes_a.size(), direct_a.size());
  for (std::size_t i = 0; i < direct_a.size(); ++i) {
    expect_identical(outcomes_a[i], direct_a[i]);
  }
}

TEST(Eviction, InjectedBuildFailureUnderPressureRollsBackCleanly) {
  // Build failure and eviction pressure interleaved: build 2 (workload
  // B's image) fails injected; the claim rolls back; the retry is a
  // failure-path rebuild; its publish then evicts A's image; A's
  // transparent rebuild evicts B's in turn. Every surviving result is
  // byte-identical -- neither machinery corrupts the other.
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 17;
  plan->fail_image_build = 2;
  CacheBudget tiny;
  tiny.image_bytes = 1;
  ServiceOptions options = budgeted(1, tiny);
  options.faults = plan;
  Fixture fx(options);
  const sim::RunResult direct_a = reference_systems()[0].run();
  const sim::RunResult direct_b = reference_systems()[1].run();

  expect_identical(fx.service.submit(RunJob{fx.ids[0]}).wait(), direct_a);

  const auto poisoned = fx.service.submit(RunJob{fx.ids[1]});
  try {
    (void)poisoned.wait();
    FAIL() << "expected the injected build failure to rethrow";
  } catch (const apcc::CheckError& e) {
    EXPECT_STREQ(e.what(), "injected fault: image build 2 failed (seed 17)");
  }
  {
    // The rollback left A's image untouched -- a failed build is not a
    // publish, so no eviction pass ran for it.
    const auto stats = fx.service.cache_stats();
    EXPECT_EQ(stats.images.evictions, 0u);
    EXPECT_EQ(stats.images.entries, 1u);
  }

  expect_identical(fx.service.submit(RunJob{fx.ids[1]}).wait(), direct_b);
  expect_identical(fx.service.submit(RunJob{fx.ids[0]}).wait(), direct_a);

  const auto stats = fx.service.cache_stats();
  EXPECT_EQ(stats.images.built, 3u);     // A, B's retry, A's rebuild
  EXPECT_EQ(stats.images.misses, 4u);    // + the failed claim
  EXPECT_EQ(stats.images.rebuilds, 1u);  // only the failure-path retry
  EXPECT_EQ(stats.images.evictions, 2u); // B's publish took A, A's took B
  EXPECT_EQ(stats.images.entries, 1u);
}

TEST(Eviction, FaultPlanForcedFlushDrivesRebuildDeterministically) {
  // evict_at_publish = 3, one worker, the k-alternating grid: publishes
  // land as (1) image, (2) k=1 geometry, (3) k=4 geometry. The forced
  // flush at publish 3 reclaims exactly the unpinned k=1 geometry --
  // the publishing cell's image and k=4 borrows are pinned -- so the
  // next k=1 cell rebuilds it. No budget tuning, same outcome bytes.
  auto plan = std::make_shared<FaultPlan>();
  plan->evict_at_publish = 3;
  ServiceOptions options;
  options.workers = 1;
  options.faults = plan;
  Fixture fx(options);
  const auto grid = test_grid();
  sweep::SweepOptions sequential;
  sequential.workers = 1;
  const auto direct = reference_systems()[0].run_sweep(grid, sequential);

  SweepJob job;
  job.workload = fx.ids[0];
  job.tasks = grid;
  const auto outcomes = fx.service.submit(job).wait();
  ASSERT_EQ(outcomes.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    expect_identical(outcomes[i], direct[i]);
  }

  const auto stats = fx.service.cache_stats();
  EXPECT_EQ(stats.images.evictions, 0u);     // pinned at the flush
  EXPECT_EQ(stats.frontiers.evictions, 1u);  // exactly the k=1 geometry
  EXPECT_GT(stats.frontiers.evicted_bytes, 0u);
  EXPECT_EQ(stats.frontiers.built, 3u);      // k=1, k=4, k=1 again
  EXPECT_EQ(stats.frontiers.misses, 3u);
  EXPECT_EQ(stats.frontiers.rebuilds, 0u);   // eviction is not a failure
  EXPECT_EQ(stats.frontiers.entries, 2u);    // both resident at the end
}

}  // namespace
}  // namespace apcc::serving
