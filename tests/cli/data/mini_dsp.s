# mini_dsp.s -- checked-in CLI smoke workload.
#
# Small but representative: a hot accumulate loop calling a leaf
# function, a rarely-taken guard, and a cold never-called error
# handler -- enough block structure for sim/sweep/campaign to produce
# non-trivial policies, small enough that the smoke tests run in
# milliseconds.
.entry main

.func scale2
  # r2 = (r1 * 3) & 255
  addi r3, r0, 3
  mul r2, r1, r3
  andi r2, r2, 255
  ret

.func cold_error
  # Never called: referenced only by the never-taken guard in main.
  addi r9, r0, 255
  sw r9, 0(r10)
  addi r9, r9, 1
  sw r9, 4(r10)
  ret

.func main
  addi r5, r0, 0       # accumulator
  addi r6, r0, 0       # induction
  addi r7, r0, 96      # trip count
  addi r10, r0, 4096   # spill base
loop:
  add r1, r6, r5
  andi r1, r1, 127
  jal scale2
  add r5, r5, r2
  andi r5, r5, 8191
  addi r6, r6, 1
  bne r6, r7, loop
  # Guard: r5 is masked to 13 bits, so this trips only if arithmetic
  # broke -- the call below is cold code.
  addi r8, r0, 16384
  slt r9, r5, r8
  bne r9, r0, done
  jal cold_error
done:
  sw r5, 0(r10)
  halt
