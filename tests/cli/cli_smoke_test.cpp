// CLI smoke tests: drive the apcc_cli binary end-to-end on a checked-in
// .s workload and pin the contract scripts rely on -- exit codes
// (0 success, 1 usage error incl. contradictory grid options, 2 input
// error), CSV output with a stable header, and the batch job-file mode.
//
// The binary path and data directory arrive via compile definitions
// (APCC_CLI_PATH / APCC_CLI_DATA_DIR, set in CMakeLists.txt); the test
// group is only built when APCC_BUILD_TOOLS is on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr const char* kCliPath = APCC_CLI_PATH;
constexpr const char* kDataDir = APCC_CLI_DATA_DIR;

/// The fixed to_csv header (core/csv.hpp): scripts parse on it.
constexpr const char* kCsvHeader =
    "label,total_cycles,baseline_cycles,slowdown,peak_bytes,avg_bytes,"
    "compressed_area_bytes,original_bytes,codec_ratio,exceptions,"
    "demand_decompressions,predecompressions,deletions,evictions,"
    "stall_cycles";

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout only; stderr is discarded
};

CommandResult run_cli(const std::string& args) {
  const std::string command =
      std::string(kCliPath) + " " + args + " 2>/dev/null";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string workload_path() {
  return std::string(kDataDir) + "/mini_dsp.s";
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::size_t count_fields(const std::string& line) {
  return static_cast<std::size_t>(
             std::count(line.begin(), line.end(), ',')) + 1;
}

TEST(CliSmoke, SimReportsTheWorkload) {
  const auto result = run_cli("sim " + workload_path());
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("mini_dsp.s"), std::string::npos);
  EXPECT_NE(result.output.find("cycles:"), std::string::npos);
}

TEST(CliSmoke, SimCsvHasStableHeaderAndOneRow) {
  const auto result = run_cli("sim " + workload_path() + " --csv");
  ASSERT_EQ(result.exit_code, 0);
  const auto lines = lines_of(result.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], kCsvHeader);
  EXPECT_EQ(count_fields(lines[1]), count_fields(lines[0]));
}

TEST(CliSmoke, SweepCsvHasFullGridInTaskOrder) {
  const auto result =
      run_cli("sweep " + workload_path() + " --csv --workers 2");
  ASSERT_EQ(result.exit_code, 0);
  const auto lines = lines_of(result.output);
  // Header + 3 strategies x 4 k values.
  ASSERT_EQ(lines.size(), 1u + 12u);
  EXPECT_EQ(lines[0], kCsvHeader);
  EXPECT_EQ(lines[1].rfind("on-demand/k=1,", 0), 0u);
  EXPECT_EQ(lines[12].rfind("pre-single/k=8,", 0), 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(count_fields(lines[i]), count_fields(lines[0])) << lines[i];
  }
}

TEST(CliSmoke, SweepAndCampaignRejectContradictoryGridOptions) {
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --strategy pre-all")
                .exit_code,
            1);
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --kc 2").exit_code, 1);
  EXPECT_EQ(run_cli("campaign --kd 4").exit_code, 1);
}

TEST(CliSmoke, UsageErrorsExitOne) {
  EXPECT_EQ(run_cli("sim " + workload_path() + " --no-such-flag").exit_code,
            1);
  EXPECT_EQ(run_cli("frobnicate x").exit_code, 1);
}

TEST(CliSmoke, MissingInputExitsTwo) {
  EXPECT_EQ(run_cli("sim /nonexistent/nope.s").exit_code, 2);
}

TEST(CliSmoke, BatchRunsCampaignOverTheCheckedInWorkload) {
  // batch covers the campaign path on the checked-in workload (the bare
  // `campaign` subcommand grids over the whole built-in suite, too slow
  // for a smoke test) and exercises run/sweep artifact reuse.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_jobs.txt";
  {
    std::ofstream out(jobfile);
    out << "# smoke jobs\n"
        << "run " << workload_path() << "\n"
        << "sweep " << workload_path() << " --csv\n"
        << "campaign " << workload_path() << " --csv\n";
  }
  const auto result = run_cli("batch " + jobfile + " --workers 2");
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("### job 1: run"), std::string::npos);
  EXPECT_NE(result.output.find("### job 2: sweep"), std::string::npos);
  EXPECT_NE(result.output.find("### job 3: campaign"), std::string::npos);
  // The campaign CSV labels rows workload/task.
  EXPECT_NE(result.output.find(workload_path() + "/on-demand/k=1,"),
            std::string::npos);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, BatchRejectsGridOverridesInsideJobLines) {
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_bad_jobs.txt";
  {
    std::ofstream out(jobfile);
    out << "sweep " << workload_path() << " --strategy pre-all\n";
  }
  EXPECT_EQ(run_cli("batch " + jobfile).exit_code, 1);
  // --workers is service-wide: a job line passing it is rejected, not
  // silently ignored -- even when every earlier line is valid (the
  // whole file is validated before anything is submitted).
  {
    std::ofstream out(jobfile);
    out << "run " << workload_path() << "\n"
        << "sweep " << workload_path() << " --workers 4\n";
  }
  EXPECT_EQ(run_cli("batch " + jobfile).exit_code, 1);
  // And the mirror image: per-job config on the batch command line
  // (which applies to no job) is rejected, not silently dropped.
  {
    std::ofstream out(jobfile);
    out << "run " << workload_path() << "\n";
  }
  EXPECT_EQ(run_cli("batch " + jobfile + " --codec null").exit_code, 1);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, AsmAndCfgStillWork) {
  const auto asm_result = run_cli("asm " + workload_path());
  EXPECT_EQ(asm_result.exit_code, 0);
  EXPECT_NE(asm_result.output.find("function(s)"), std::string::npos);
  const auto cfg_result = run_cli("cfg " + workload_path());
  EXPECT_EQ(cfg_result.exit_code, 0);
  EXPECT_NE(cfg_result.output.find("digraph"), std::string::npos);
}

}  // namespace
