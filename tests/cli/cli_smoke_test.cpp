// CLI smoke tests: drive the apcc_cli binary end-to-end on a checked-in
// .s workload and pin the contract scripts rely on -- exit codes
// (0 success, 1 usage error incl. contradictory grid options, 2 input
// error), CSV output with a stable header, and the batch job-file mode.
//
// The binary path and data directory arrive via compile definitions
// (APCC_CLI_PATH / APCC_CLI_DATA_DIR, set in CMakeLists.txt); the test
// group is only built when APCC_BUILD_TOOLS is on.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace {

constexpr const char* kCliPath = APCC_CLI_PATH;
constexpr const char* kDataDir = APCC_CLI_DATA_DIR;

/// The fixed to_csv header (core/csv.hpp): scripts parse on it.
constexpr const char* kCsvHeader =
    "label,total_cycles,baseline_cycles,slowdown,peak_bytes,avg_bytes,"
    "compressed_area_bytes,original_bytes,codec_ratio,exceptions,"
    "demand_decompressions,predecompressions,deletions,evictions,"
    "stall_cycles";

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout only; stderr is discarded
};

CommandResult run_cli(const std::string& args) {
  const std::string command =
      std::string(kCliPath) + " " + args + " 2>/dev/null";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Like run_cli but captures stderr instead (for diagnostics checks).
CommandResult run_cli_stderr(const std::string& args) {
  const std::string command =
      std::string(kCliPath) + " " + args + " 2>&1 1>/dev/null";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Run an arbitrary shell snippet (for orchestration the binary alone
/// cannot express, e.g. signalling a backgrounded serve process).
CommandResult run_shell(const std::string& script) {
  CommandResult result;
  FILE* pipe = popen(script.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string workload_path() {
  return std::string(kDataDir) + "/mini_dsp.s";
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::size_t count_fields(const std::string& line) {
  return static_cast<std::size_t>(
             std::count(line.begin(), line.end(), ',')) + 1;
}

TEST(CliSmoke, SimReportsTheWorkload) {
  const auto result = run_cli("sim " + workload_path());
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("mini_dsp.s"), std::string::npos);
  EXPECT_NE(result.output.find("cycles:"), std::string::npos);
}

TEST(CliSmoke, SimCsvHasStableHeaderAndOneRow) {
  const auto result = run_cli("sim " + workload_path() + " --csv");
  ASSERT_EQ(result.exit_code, 0);
  const auto lines = lines_of(result.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], kCsvHeader);
  EXPECT_EQ(count_fields(lines[1]), count_fields(lines[0]));
}

TEST(CliSmoke, SimAcceptsThePatternCodecFamily) {
  // The codec option covers the whole registry; the pattern family and
  // the adaptive meta-codec run end to end through the CLI path.
  for (const char* codec : {"fpc", "bdi", "adaptive", "field-split"}) {
    const auto result =
        run_cli("sim " + workload_path() + " --codec " + codec + " --csv");
    ASSERT_EQ(result.exit_code, 0) << codec;
    const auto lines = lines_of(result.output);
    ASSERT_EQ(lines.size(), 2u) << codec;
    EXPECT_EQ(lines[0], kCsvHeader) << codec;
  }
  EXPECT_EQ(run_cli("sim " + workload_path() + " --codec fpcx").exit_code, 1);
}

TEST(CliSmoke, SweepCsvHasFullGridInTaskOrder) {
  const auto result =
      run_cli("sweep " + workload_path() + " --csv --workers 2");
  ASSERT_EQ(result.exit_code, 0);
  const auto lines = lines_of(result.output);
  // Header + 3 strategies x 4 k values.
  ASSERT_EQ(lines.size(), 1u + 12u);
  EXPECT_EQ(lines[0], kCsvHeader);
  EXPECT_EQ(lines[1].rfind("on-demand/k=1,", 0), 0u);
  EXPECT_EQ(lines[12].rfind("pre-single/k=8,", 0), 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(count_fields(lines[i]), count_fields(lines[0])) << lines[i];
  }
}

TEST(CliSmoke, SweepBatchCellsMatchesPerEngineSweep) {
  // --batch-cells is a scheduling knob, never a results knob: the CSV
  // (task order, every field) must be byte-identical to the per-engine
  // sweep, including a width that does not divide the 12-task grid.
  const auto reference =
      run_cli("sweep " + workload_path() + " --csv --workers 2");
  ASSERT_EQ(reference.exit_code, 0);
  for (const char* width : {"1", "5", "16"}) {
    const auto batched =
        run_cli("sweep " + workload_path() + " --csv --workers 2" +
                " --batch-cells " + width);
    ASSERT_EQ(batched.exit_code, 0) << width;
    EXPECT_EQ(batched.output, reference.output) << width;
  }
}

TEST(CliSmoke, CacheBudgetIsAServerKnobNeverAResultsKnob) {
  // --cache-budget-bytes bounds the service's artifact cache: a one-byte
  // ceiling forces eviction at every publish, yet the CSV must stay
  // byte-identical to the unbudgeted sweep (evicted artifacts rebuild
  // bit-identically on next use).
  const auto reference =
      run_cli("sweep " + workload_path() + " --csv --workers 1");
  ASSERT_EQ(reference.exit_code, 0);
  const auto budgeted =
      run_cli("sweep " + workload_path() + " --csv --workers 1" +
              " --cache-budget-bytes 1");
  ASSERT_EQ(budgeted.exit_code, 0);
  EXPECT_EQ(budgeted.output, reference.output);
  // The per-kind variants parse too.
  const auto per_kind = run_cli(
      "sweep " + workload_path() + " --csv --workers 1" +
      " --cache-budget-image-bytes 1 --cache-budget-frontier-bytes 1");
  ASSERT_EQ(per_kind.exit_code, 0);
  EXPECT_EQ(per_kind.output, reference.output);
  // A missing value is a usage error, not a silent zero.
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --cache-budget-bytes")
                .exit_code,
            1);
}

TEST(CliSmoke, BatchSummaryReportsEvictionCountersUnderBudget) {
  // The batch summary on stderr uses the shared cache-stats formatter:
  // under a one-byte budget the thrashing sweep must surface nonzero
  // eviction counters there.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_budget_jobs.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind sweep\nworkload " << workload_path()
        << "\ngrid strategy-k\nend\n";
  }
  const auto result = run_cli_stderr("batch " + jobfile +
                                     " --workers 1 --cache-budget-bytes 1");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("cache images:"), std::string::npos)
      << result.output;
  const std::size_t frontier_line = result.output.find("cache frontiers:");
  ASSERT_NE(frontier_line, std::string::npos) << result.output;
  // The k-gridded sweep thrashes the one-byte budget, so the frontier
  // eviction counter is nonzero. (The lone image stays pinned by every
  // publishing cell, so its counter legitimately reads 0.)
  const std::string frontiers = result.output.substr(frontier_line);
  EXPECT_NE(frontiers.find(" eviction(s)"), std::string::npos) << frontiers;
  EXPECT_EQ(frontiers.find(" 0 eviction(s)"), std::string::npos) << frontiers;
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, BatchCellsRejectedWhereItCannotApply) {
  // Run-kind commands have a single cell per job; batch and serve take
  // per-job knobs from the job records. Silently ignoring the flag is
  // the trap the CLI rejects everywhere.
  EXPECT_EQ(run_cli("sim " + workload_path() + " --batch-cells 4").exit_code,
            1);
  EXPECT_EQ(run_cli("suite --batch-cells 4").exit_code, 1);
  EXPECT_EQ(run_cli("batch nofile.wire --batch-cells 4").exit_code, 1);
  EXPECT_EQ(run_cli("serve --batch-cells 4 < /dev/null").exit_code, 1);
}

TEST(CliSmoke, SweepAndCampaignRejectContradictoryGridOptions) {
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --strategy pre-all")
                .exit_code,
            1);
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --kc 2").exit_code, 1);
  EXPECT_EQ(run_cli("campaign --kd 4").exit_code, 1);
}

TEST(CliSmoke, UsageErrorsExitOne) {
  EXPECT_EQ(run_cli("sim " + workload_path() + " --no-such-flag").exit_code,
            1);
  EXPECT_EQ(run_cli("frobnicate x").exit_code, 1);
  // Output-format flags that would be silently ignored are rejected:
  // only batch takes --wire, and serve always emits wire records.
  EXPECT_EQ(run_cli("sim " + workload_path() + " --wire").exit_code, 1);
  EXPECT_EQ(run_cli("sweep " + workload_path() + " --wire").exit_code, 1);
  EXPECT_EQ(run_cli("serve --csv < /dev/null").exit_code, 1);
  // wire-roundtrip takes exactly one file; extras are rejected, not
  // silently dropped.
  EXPECT_EQ(run_cli("wire-roundtrip a.wire b.wire").exit_code, 1);
}

TEST(CliSmoke, MissingInputExitsTwo) {
  EXPECT_EQ(run_cli("sim /nonexistent/nope.s").exit_code, 2);
}

TEST(CliSmoke, BatchRunsWireJobFileOverTheCheckedInWorkload) {
  // batch covers the wire-format job file: run + sweep + campaign
  // records over the checked-in workload (the bare `campaign`
  // subcommand grids over the whole built-in suite, too slow for a
  // smoke test), exercising artifact reuse and the QoS fields.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_jobs.wire";
  {
    std::ofstream out(jobfile);
    out << "# smoke jobs (wire format)\n"
        << "apcc.job v4\n"
        << "kind run\n"
        << "workload " << workload_path() << "\n"
        << "end\n"
        << "\n"
        << "apcc.job v4\n"
        << "kind sweep\n"
        << "priority high\n"
        << "max-workers 1\n"
        << "workload " << workload_path() << "\n"
        << "grid strategy-k\n"
        << "end\n"
        << "\n"
        << "apcc.job v4\n"
        << "kind campaign\n"
        << "priority batch\n"
        << "workload " << workload_path() << "\n"
        << "task label=on-demand/k=1 strategy=on-demand kc=1 kd=1\n"
        << "end\n";
  }
  const auto result = run_cli("batch " + jobfile + " --workers 2 --csv");
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("### job 1: run"), std::string::npos);
  EXPECT_NE(result.output.find("### job 2: sweep"), std::string::npos);
  EXPECT_NE(result.output.find("[high]"), std::string::npos);
  EXPECT_NE(result.output.find("### job 3: campaign"), std::string::npos);
  // The sweep grid sugar expanded to the standard 12 labels, and the
  // campaign CSV labels rows workload/task.
  EXPECT_NE(result.output.find("pre-single/k=8,"), std::string::npos);
  EXPECT_NE(result.output.find(workload_path() + "/on-demand/k=1,"),
            std::string::npos);

  // --wire emits machine-readable result records instead.
  const auto wired = run_cli("batch " + jobfile + " --wire");
  ASSERT_EQ(wired.exit_code, 0);
  EXPECT_NE(wired.output.find("apcc.result v4\njob 1\n"), std::string::npos);
  EXPECT_NE(wired.output.find("status ok"), std::string::npos);
  EXPECT_NE(wired.output.find("kind campaign"), std::string::npos);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, BatchWireEmitsErrorRecordsForFailedJobs) {
  // In --wire mode the stream is the contract: a job that fails at
  // runtime becomes a status-error record (like serve), never a
  // truncated stream -- later jobs' records still arrive.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_wire_fail.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n"
        << "apcc.job v4\nkind run\nworkload " << workload_path() << "\n"
        << "policy budget=1\n"  // smaller than any block: engine throws
        << "end\n"
        << "apcc.job v4\nkind run\nworkload /nonexistent/nope.s\nend\n"
        << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n";
  }
  const auto result = run_cli("batch " + jobfile + " --wire");
  ASSERT_EQ(result.exit_code, 0);
  const std::size_t first = result.output.find("apcc.result v4\njob 1\n");
  const std::size_t second = result.output.find("apcc.result v4\njob 2\n");
  const std::size_t third = result.output.find("apcc.result v4\njob 3\n");
  const std::size_t fourth = result.output.find("apcc.result v4\njob 4\n");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  ASSERT_NE(fourth, std::string::npos);
  // Job 2 failed at runtime (engine), job 3 never started (unknown
  // workload) -- both are status-error records in their slots; jobs 1
  // and 4 still deliver ok results.
  const std::string engine_failed = result.output.substr(second, third - second);
  EXPECT_NE(engine_failed.find("status error"), std::string::npos)
      << engine_failed;
  const std::string never_started =
      result.output.substr(third, fourth - third);
  EXPECT_NE(never_started.find("status error"), std::string::npos)
      << never_started;
  EXPECT_NE(never_started.find("nope.s"), std::string::npos);
  EXPECT_NE(result.output.substr(fourth).find("status ok"),
            std::string::npos);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, BatchReportsLineAndSnippetOnMalformedRecords) {
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_bad_jobs.wire";
  // A job record with a bad value on line 4: the diagnostic must name
  // the file, the line, and echo the offending text -- not just exit 1.
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\n"
        << "kind sweep\n"
        << "workload " << workload_path() << "\n"
        << "task label=x strategy=warp-speed\n"
        << "end\n";
  }
  const auto result = run_cli_stderr("batch " + jobfile);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find(jobfile + ":4:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("strategy=warp-speed"), std::string::npos)
      << result.output;
  // The PR 4 job-file syntax is gone: an old-style line is a wire
  // format error (migration note in README.md), not a silent no-op.
  {
    std::ofstream out(jobfile);
    out << "run " << workload_path() << "\n";
  }
  EXPECT_EQ(run_cli("batch " + jobfile).exit_code, 1);
  // Per-job config on the batch command line (which applies to no job)
  // is still rejected, not silently dropped.
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n";
  }
  EXPECT_EQ(run_cli("batch " + jobfile + " --codec null").exit_code, 1);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, ServeStreamsWireResultsInSubmissionOrder) {
  // The remote front door: job records in on stdin, result records out
  // on stdout, submission order, errors as records (the server keeps
  // going after a bad job).
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_serve.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\n"
        << "kind run\n"
        << "client smoke\n"
        << "workload " << workload_path() << "\n"
        << "end\n"
        << "apcc.job v4\n"
        << "kind run\n"
        << "workload /nonexistent/nope.s\n"
        << "end\n"
        << "apcc.job v4\n"
        << "kind sweep\n"
        << "workload " << workload_path() << "\n"
        << "task label=on-demand/k=1 strategy=on-demand kc=1 kd=1\n"
        << "end\n";
  }
  const auto result = run_cli("serve < " + jobfile);
  ASSERT_EQ(result.exit_code, 0);
  const std::size_t first = result.output.find("apcc.result v4\njob 1\n");
  const std::size_t second = result.output.find("apcc.result v4\njob 2\n");
  const std::size_t third = result.output.find("apcc.result v4\njob 3\n");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  EXPECT_NE(result.output.find("client smoke"), std::string::npos);
  // Job 2 failed (missing file) as a status error record; job 3 after
  // it still ran to an ok sweep result.
  const std::string middle = result.output.substr(second, third - second);
  EXPECT_NE(middle.find("status error"), std::string::npos);
  EXPECT_NE(middle.find("nope.s"), std::string::npos);
  const std::string tail = result.output.substr(third);
  EXPECT_NE(tail.find("status ok"), std::string::npos);
  EXPECT_NE(tail.find("kind sweep"), std::string::npos);
  EXPECT_NE(tail.find("label=on-demand/k=1"), std::string::npos);
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, ServeEmitsResultsWhileStdinIsStillOpen) {
  // The request/response shape: a client writes one job and waits for
  // its result before sending anything else. The result record must
  // arrive while stdin is still open -- the server can't sit on
  // completed results until the next record or EOF.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_serve_stream.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n";
  }
  // The subshell holds stdin open for 4s after the job; the first
  // result record must complete well before that.
  const std::string command = "( cat " + jobfile + "; sleep 4 ) | " +
                              std::string(kCliPath) + " serve 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  const auto start = std::chrono::steady_clock::now();
  std::string output;
  double first_record_seconds = 1e9;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
    if (std::string(buffer) == "end\n") {
      first_record_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      break;
    }
  }
  pclose(pipe);  // waits out the subshell's sleep
  EXPECT_NE(output.find("apcc.result v4\njob 1\n"), std::string::npos)
      << output;
  EXPECT_NE(output.find("status ok"), std::string::npos) << output;
  EXPECT_LT(first_record_seconds, 3.0)
      << "serve held a finished result until stdin closed";
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, WireRoundtripIsAFixedPoint) {
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_roundtrip.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\n"
        << "kind sweep\n"
        << "workload gsm-like\n"
        << "grid strategy-k\n"
        << "end\n";
  }
  const auto once = run_cli("wire-roundtrip " + jobfile);
  ASSERT_EQ(once.exit_code, 0);
  const std::string canonical = ::testing::TempDir() + "/apcc_canonical.wire";
  {
    std::ofstream out(canonical);
    out << once.output;
  }
  const auto twice = run_cli("wire-roundtrip " + canonical);
  ASSERT_EQ(twice.exit_code, 0);
  EXPECT_EQ(once.output, twice.output);
  std::remove(jobfile.c_str());
  std::remove(canonical.c_str());
}

TEST(CliSmoke, VersionPrintsToolAndWireVersion) {
  const auto result = run_cli("version");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output.rfind("apcc_cli ", 0), 0u) << result.output;
  EXPECT_NE(result.output.find("(wire v4)"), std::string::npos)
      << result.output;
  // Exactly-one-line contract, scripts parse it.
  EXPECT_EQ(lines_of(result.output).size(), 1u);
  EXPECT_EQ(run_cli("version --csv").exit_code, 1);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(CliSmoke, ServeMaxQueuedRejectsOverloadAsRecords) {
  // Bounded admission: with --max-queued 1 and a slow sweep occupying
  // the slot, the quick jobs behind it resolve as status-rejected
  // records -- the stream never stalls, never throws, and still emits
  // exactly one record per job, in submission order.
  const std::string jobfile =
      ::testing::TempDir() + "/apcc_smoke_overload.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind sweep\nworkload " << workload_path()
        << "\ngrid strategy-k\nend\n"
        << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n"
        << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n";
  }
  const auto result =
      run_cli("serve --max-queued 1 --workers 1 < " + jobfile);
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_EQ(count_occurrences(result.output, "apcc.result v4\n"), 3u)
      << result.output;
  for (int job = 1; job <= 3; ++job) {
    EXPECT_EQ(count_occurrences(result.output,
                                "job " + std::to_string(job) + "\n"),
              1u)
        << result.output;
  }
  // The occupant finished; the overflow was rejected with the fixed
  // admission message (deterministic bytes, see fault_injection_test).
  EXPECT_NE(result.output.find("status ok"), std::string::npos);
  EXPECT_NE(result.output.find("status rejected"), std::string::npos);
  EXPECT_NE(result.output.find("job%20limit%20reached"), std::string::npos)
      << result.output;
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, ServeDrainsGracefullyOnSigterm) {
  // SIGTERM mid-stream: serve stops reading, finishes every accepted
  // job, emits exactly one record per accepted job, and exits 0. The
  // fifo keeps stdin open so the shutdown is signal-driven, not EOF.
  const std::string dir = ::testing::TempDir();
  const std::string jobfile = dir + "/apcc_smoke_drain.wire";
  {
    std::ofstream out(jobfile);
    out << "apcc.job v4\nkind run\nworkload " << workload_path() << "\nend\n"
        << "apcc.job v4\nkind sweep\nworkload " << workload_path()
        << "\ngrid strategy-k\nend\n";
  }
  const std::string script =
      "fifo=" + dir + "/apcc_drain_fifo; out=" + dir + "/apcc_drain_out; "
      "rm -f \"$fifo\"; mkfifo \"$fifo\"; "
      + std::string(kCliPath) + " serve --workers 1 < \"$fifo\" > \"$out\" "
      "2>/dev/null & pid=$!; "
      "exec 3> \"$fifo\"; cat " + jobfile + " >&3; "
      "n=0; until grep -q '^end$' \"$out\" 2>/dev/null; do "
      "sleep 0.1; n=$((n+1)); [ $n -gt 300 ] && break; done; "
      "kill -TERM $pid; wait $pid; status=$?; exec 3>&-; "
      "echo \"serve-exit=$status\"; cat \"$out\"; "
      "rm -f \"$fifo\" \"$out\"";
  const auto result = run_shell(script);
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("serve-exit=0"), std::string::npos)
      << result.output;
  // Exactly one record per accepted job, drained to completion (the
  // sweep may legitimately resolve cancelled if it had not started).
  EXPECT_EQ(count_occurrences(result.output, "apcc.result v4\n"), 2u)
      << result.output;
  EXPECT_EQ(count_occurrences(result.output, "job 1\n"), 1u);
  EXPECT_EQ(count_occurrences(result.output, "job 2\n"), 1u);
  EXPECT_EQ(count_occurrences(result.output, "status error"), 0u)
      << result.output;
  std::remove(jobfile.c_str());
}

TEST(CliSmoke, ServeListensOnTcpRejectsOverloadAndDrainsOnSigterm) {
  // The TCP front door end-to-end: `serve --listen 0` binds an
  // ephemeral port and announces it on stderr; a loopback client
  // speaks the stdin wire protocol over the socket -- per-session
  // submission order, --max-queued-per-client overflow resolving as a
  // `status rejected` record -- and SIGTERM drains the server to exit
  // 0 while the listener is live.
  const std::string command =
      std::string(kCliPath) +
      " serve --listen 0 --workers 1 --max-queued-per-client 1"
      " < /dev/null 2>&1 1>/dev/null"
      " & pid=$!; echo pid=$pid; wait $pid; echo exit=$?";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[512];
  long pid = -1;
  int port = 0;
  while ((pid < 0 || port == 0) &&
         fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    const std::string line(buffer);
    if (line.rfind("pid=", 0) == 0) pid = std::stol(line.substr(4));
    const std::string needle = "listening on 127.0.0.1:";
    const std::size_t pos = line.find(needle);
    if (pos != std::string::npos) {
      port = std::stoi(line.substr(pos + needle.size()));
    }
  }
  ASSERT_GT(pid, 0);
  ASSERT_GT(port, 0);

  // A slow job occupies the per-client slot; the run job right behind
  // it on the same connection must come back rejected. Job 1 is a
  // three-workload suite campaign (tens of ms of work on the single
  // worker); job 2 reuses gsm-like, so its prepare is a dedup lookup
  // and both submits happen back-to-back on the IO thread -- job 1 is
  // still live at job 2's admission check unless the IO thread stalls
  // for the whole campaign between two adjacent submits.
  const std::string jobs =
      "apcc.job v4\nkind campaign\nworkload gsm-like\n"
      "workload crc-like\nworkload adpcm-like\n"
      "grid strategy-k\nend\n"
      "apcc.job v4\nkind run\nworkload gsm-like\nend\n";
  std::string response;
  {
    const apcc::net::Fd client =
        apcc::net::connect_tcp("127.0.0.1", static_cast<std::uint16_t>(port));
    std::size_t sent = 0;
    while (sent < jobs.size()) {
      const ssize_t n =
          ::send(client.get(), jobs.data() + sent, jobs.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    ::shutdown(client.get(), SHUT_WR);  // half-close: results still flow
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(client.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
  }
  const std::size_t first = response.find("apcc.result v4\njob 1\n");
  const std::size_t second = response.find("apcc.result v4\njob 2\n");
  ASSERT_NE(first, std::string::npos) << response;
  ASSERT_NE(second, std::string::npos) << response;
  EXPECT_LT(first, second);
  EXPECT_NE(response.find("status ok"), std::string::npos) << response;
  EXPECT_NE(response.find("status rejected"), std::string::npos) << response;

  // SIGTERM with no client connected: the drain closes the listener
  // and the process exits 0.
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGTERM), 0);
  std::string tail;
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) tail += buffer;
  pclose(pipe);
  EXPECT_NE(tail.find("exit=0"), std::string::npos) << tail;

  // --host is a --listen modifier: rejected on the stdin path.
  EXPECT_EQ(run_cli("serve --host 10.0.0.1 < /dev/null").exit_code, 1);
}

TEST(CliSmoke, AsmAndCfgStillWork) {
  const auto asm_result = run_cli("asm " + workload_path());
  EXPECT_EQ(asm_result.exit_code, 0);
  EXPECT_NE(asm_result.output.find("function(s)"), std::string::npos);
  const auto cfg_result = run_cli("cfg " + workload_path());
  EXPECT_EQ(cfg_result.exit_code, 0);
  EXPECT_NE(cfg_result.output.find("digraph"), std::string::npos);
}

}  // namespace
