// Baseline scheme tests: no-compression, load-time decompression,
// cold-function compression (Debray-Evans) and the procedure cache
// (Kirovski et al.).
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "baselines/function_compression.hpp"
#include "core/system.hpp"
#include "workloads/suite.hpp"

namespace apcc::baselines {
namespace {

const workloads::Workload& adpcm() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kAdpcmLike);
  return w;
}

runtime::BlockImage make_image(const workloads::Workload& w) {
  auto bytes = w.block_bytes;
  auto codec = compress::make_codec(compress::CodecKind::kLzss, bytes);
  return runtime::BlockImage(w.cfg, std::move(bytes), std::move(codec));
}

TEST(NoCompression, SlowdownIsExactlyOne) {
  const auto& w = adpcm();
  const auto r = run_no_compression(w.cfg, w.trace, {});
  EXPECT_DOUBLE_EQ(r.slowdown(), 1.0);
  EXPECT_EQ(r.total_cycles, r.baseline_cycles);
  EXPECT_EQ(r.exceptions, 0u);
}

TEST(NoCompression, MemoryIsOriginalImage) {
  const auto& w = adpcm();
  const auto r = run_no_compression(w.cfg, w.trace, {});
  EXPECT_EQ(r.peak_occupancy_bytes, w.cfg.total_code_bytes());
  EXPECT_DOUBLE_EQ(r.peak_saving(), 0.0);
}

TEST(LoadTime, PaysStartupOnce) {
  const auto& w = adpcm();
  const auto image = make_image(w);
  const auto r = run_load_time_decompression(w.cfg, image, w.trace, {});
  EXPECT_GT(r.total_cycles, r.baseline_cycles);
  EXPECT_EQ(r.demand_decompressions, 1u);
  // RAM cost is the full uncompressed image: no saving.
  EXPECT_EQ(r.peak_occupancy_bytes, w.cfg.total_code_bytes());
}

TEST(LoadTime, RatioReported) {
  const auto& w = adpcm();
  const auto image = make_image(w);
  const auto r = run_load_time_decompression(w.cfg, image, w.trace, {});
  EXPECT_LT(r.codec_ratio, 1.0);
  EXPECT_LT(r.compressed_area_bytes, r.original_image_bytes);
}

TEST(ColdOnly, SavesMemoryWithoutSlowdownWhenTrainedOnSelf) {
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  config.mode = FunctionCompressionConfig::Mode::kColdOnly;
  const auto r = run_function_compression(w, config);
  // Training on the full trace: every executed function is hot, so no
  // runtime decompression happens at all...
  EXPECT_EQ(r.demand_decompressions, 0u);
  EXPECT_DOUBLE_EQ(r.slowdown(), 1.0);
  // ...but cold functions stay compressed, so memory is saved vs original.
  EXPECT_LT(r.peak_occupancy_bytes, r.original_image_bytes);
}

TEST(ColdOnly, PartialTrainingPaysColdMisses) {
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  config.train_fraction = 0.01;  // train on a tiny prefix
  const auto r = run_function_compression(w, config);
  // Functions first touched after the training prefix fault once each.
  EXPECT_GT(r.demand_decompressions, 0u);
  EXPECT_GT(r.total_cycles, r.baseline_cycles);
}

TEST(ColdOnly, CoarserGranularityThanApcc) {
  // The paper's key claim vs Debray-Evans: block granularity saves more
  // memory because a hot function's cold blocks stay compressed. Compare
  // peak occupancy: APCC (per-block, k=2) vs cold-function baseline.
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  const auto func_result = run_function_compression(w, config);

  core::SystemConfig sys_config;
  sys_config.codec = compress::CodecKind::kLzss;
  sys_config.policy.compress_k = 2;
  const auto system =
      core::CodeCompressionSystem::from_workload(w, sys_config);
  const auto apcc_result = system.run();

  EXPECT_LT(apcc_result.peak_occupancy_bytes,
            func_result.peak_occupancy_bytes)
      << "block granularity must beat function granularity on memory";
}

TEST(ProcedureCache, BoundedByCacheSize) {
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  config.mode = FunctionCompressionConfig::Mode::kProcedureCache;
  config.cache_bytes = 4096;
  const auto r = run_function_compression(w, config);
  EXPECT_LE(r.peak_occupancy_bytes,
            r.compressed_area_bytes + config.cache_bytes);
}

TEST(ProcedureCache, TinyCacheEvicts) {
  const auto& w = adpcm();
  // Cache big enough for the largest function but little else.
  std::uint64_t largest = 0;
  for (const auto& f : w.program.functions()) {
    largest = std::max(largest, std::uint64_t{f.word_count} * 4);
  }
  FunctionCompressionConfig config;
  config.mode = FunctionCompressionConfig::Mode::kProcedureCache;
  config.cache_bytes = largest + 8;
  const auto r = run_function_compression(w, config);
  EXPECT_GT(r.evictions, 0u);
  EXPECT_GT(r.demand_decompressions, w.program.functions().size())
      << "evicted functions must be decompressed again";
}

TEST(ProcedureCache, CacheTooSmallRejected) {
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  config.mode = FunctionCompressionConfig::Mode::kProcedureCache;
  config.cache_bytes = 16;
  EXPECT_THROW((void)run_function_compression(w, config), apcc::CheckError);
}

TEST(FunctionCompression, InvalidTrainFractionRejected) {
  const auto& w = adpcm();
  FunctionCompressionConfig config;
  config.train_fraction = 0.0;
  EXPECT_THROW((void)run_function_compression(w, config), apcc::CheckError);
  config.train_fraction = 1.5;
  EXPECT_THROW((void)run_function_compression(w, config), apcc::CheckError);
}

}  // namespace
}  // namespace apcc::baselines
