// Decompression planner tests, pinned to the paper's §4 examples on the
// Figure 2 graph.
#include <gtest/gtest.h>

#include "cfg/paper_graphs.hpp"
#include "runtime/planner.hpp"

namespace apcc::runtime {
namespace {

StateTable all_compressed(const cfg::Cfg& g) {
  return StateTable(g.block_count());
}

Policy pre_all(std::uint32_t k) {
  Policy p;
  p.strategy = DecompressionStrategy::kPreAll;
  p.predecompress_k = k;
  return p;
}

Policy pre_single(std::uint32_t k) {
  Policy p;
  p.strategy = DecompressionStrategy::kPreSingle;
  p.predecompress_k = k;
  return p;
}

TEST(Planner, OnDemandPlansNothing) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  Policy policy;  // default on-demand
  const DecompressionPlanner planner(g, states, policy, nullptr);
  EXPECT_TRUE(planner.plan_on_exit(0, 0).empty());
}

TEST(Planner, PreSingleRequiresPredictor) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  EXPECT_THROW(DecompressionPlanner(g, states, pre_single(2), nullptr),
               apcc::CheckError);
}

TEST(Planner, PaperExamplePreAllFromB0) {
  // §4: B4, B5, B8, B9 compressed, everything else uncompressed, k=2,
  // execution just left B0 -> pre-decompress-all requests exactly
  // B4, B5, B8 and B9.
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  for (const cfg::BlockId b : {0u, 1u, 2u, 3u, 6u, 7u}) {
    states.set_form(b, BlockForm::kDecompressed);
  }
  const DecompressionPlanner planner(g, states, pre_all(2), nullptr);
  const auto plan = planner.plan_on_exit(0, 0);
  EXPECT_EQ(plan, (std::vector<cfg::BlockId>{4, 5, 8, 9}));
}

TEST(Planner, PaperExamplePreSingleFromB0PicksExactlyOne) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  for (const cfg::BlockId b : {0u, 1u, 2u, 3u, 6u, 7u}) {
    states.set_form(b, BlockForm::kDecompressed);
  }
  const ProfilePredictor predictor(g, 2);
  const DecompressionPlanner planner(g, states, pre_single(2), &predictor);
  const auto plan = planner.plan_on_exit(0, 0);
  ASSERT_EQ(plan.size(), 1u) << "pre-decompress-single picks one block";
  const std::vector<cfg::BlockId> candidates = {4, 5, 8, 9};
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), plan[0]),
            candidates.end());
}

TEST(Planner, Figure2B7PlannedAtExitOfB1WithK3) {
  // §4 / Figure 2: with k=3, B7 is decompressed at the end of B1.
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  const DecompressionPlanner planner(g, states, pre_all(3), nullptr);
  const auto plan = planner.plan_on_exit(1, 0);
  EXPECT_NE(std::find(plan.begin(), plan.end(), 7u), plan.end());
}

TEST(Planner, Figure2B7NotPlannedWithK2) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  const DecompressionPlanner planner(g, states, pre_all(2), nullptr);
  const auto plan = planner.plan_on_exit(1, 0);
  EXPECT_EQ(std::find(plan.begin(), plan.end(), 7u), plan.end())
      << "B7 is 3 edges away; k=2 must not reach it";
}

TEST(Planner, AlreadyDecompressedBlocksSkipped) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  states.set_form(1, BlockForm::kDecompressed);
  states.set_form(2, BlockForm::kDecompressing);
  const DecompressionPlanner planner(g, states, pre_all(1), nullptr);
  const auto plan = planner.plan_on_exit(0, 0);
  EXPECT_TRUE(plan.empty())
      << "both distance-1 blocks are resident or in flight";
}

TEST(Planner, RequestsOrderedNearestFirst) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  const DecompressionPlanner planner(g, states, pre_all(3), nullptr);
  const auto plan = planner.plan_on_exit(0, 0);
  // Distances from B0: B1/B2 = 1; B3/B4/B5/B8/B9 = 2; B6 = 3 (B7 = 3).
  ASSERT_GE(plan.size(), 3u);
  EXPECT_EQ(plan[0], 1u);
  EXPECT_EQ(plan[1], 2u);
  // All distance-2 blocks precede distance-3 blocks.
  const auto pos = [&](cfg::BlockId b) {
    return std::find(plan.begin(), plan.end(), b) - plan.begin();
  };
  EXPECT_LT(pos(4), pos(6));
  EXPECT_LT(pos(9), pos(7));
}

TEST(Planner, ExitBlockPlansNothing) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  const DecompressionPlanner planner(g, states, pre_all(4), nullptr);
  EXPECT_TRUE(planner.plan_on_exit(9, 0).empty());
}

TEST(Planner, PreSingleEmptyWhenFrontierClear) {
  const cfg::Cfg g = cfg::figure5_cfg();
  StateTable states(g.block_count());
  for (cfg::BlockId b = 0; b < g.block_count(); ++b) {
    states.set_form(b, BlockForm::kDecompressed);
  }
  const ProfilePredictor predictor(g, 2);
  const DecompressionPlanner planner(g, states, pre_single(2), &predictor);
  EXPECT_TRUE(planner.plan_on_exit(0, 0).empty());
}

TEST(Planner, SelfCycleSortsAtCycleLengthNotZero) {
  // Regression: edge_distance(b, b) used to return 0, so a compressed
  // block re-reached through a cycle sorted ahead of genuinely nearer
  // successors. Graph: 0 -> {1, 2}, 1 -> 0; exiting 0 with k=2 the
  // frontier is {1@1, 2@1, 0@2} and 0 must come LAST.
  cfg::Cfg g;
  for (int i = 0; i < 3; ++i) {
    g.add_block(static_cast<std::uint32_t>(i * 4), 4);
  }
  g.add_edge(0, 1, cfg::EdgeKind::kFallThrough);
  g.add_edge(0, 2, cfg::EdgeKind::kBranchTaken);
  g.add_edge(1, 0, cfg::EdgeKind::kJump);
  g.normalize_probabilities();
  StateTable states = all_compressed(g);
  for (const bool reference : {false, true}) {
    const DecompressionPlanner planner(g, states, pre_all(2), nullptr,
                                       reference);
    EXPECT_EQ(planner.plan_on_exit(0, 0),
              (std::vector<cfg::BlockId>{1, 2, 0}))
        << (reference ? "reference" : "memoized") << " planner order";
  }
}

TEST(Planner, SelfLoopSortsAtDistanceOne) {
  // A literal self-loop is a cycle of length 1: it ties with the direct
  // successors and the id tie-break applies, instead of jumping the queue
  // at the old distance 0.
  cfg::Cfg g;
  for (int i = 0; i < 3; ++i) {
    g.add_block(static_cast<std::uint32_t>(i * 4), 4);
  }
  g.add_edge(1, 1, cfg::EdgeKind::kBranchTaken);
  g.add_edge(1, 0, cfg::EdgeKind::kFallThrough);
  g.add_edge(1, 2, cfg::EdgeKind::kJump);
  g.normalize_probabilities();
  StateTable states = all_compressed(g);
  for (const bool reference : {false, true}) {
    const DecompressionPlanner planner(g, states, pre_all(1), nullptr,
                                       reference);
    EXPECT_EQ(planner.plan_on_exit(1, 0),
              (std::vector<cfg::BlockId>{0, 1, 2}))
        << (reference ? "reference" : "memoized") << " planner order";
  }
}

TEST(Planner, MemoizedMatchesReferenceAcrossFormsAndK) {
  // Differential: the FrontierCache path must emit exactly the reference
  // BFS path's request list for every exit block, k, and a spread of
  // dynamic BlockForm assignments.
  for (const cfg::Cfg& g : {cfg::figure2_cfg(), cfg::figure5_cfg(),
                            cfg::figure1_cfg()}) {
    for (const std::uint32_t k : {1u, 2u, 3u, 4u, 8u}) {
      for (const unsigned pattern : {0u, 1u, 2u, 3u}) {
        StateTable states(g.block_count());
        for (cfg::BlockId b = 0; b < g.block_count(); ++b) {
          // Deterministic mixed forms: compressed / decompressed /
          // decompressing, shifted per pattern.
          switch ((b + pattern) % 4) {
            case 1: states.set_form(b, BlockForm::kDecompressed); break;
            case 3: states.set_form(b, BlockForm::kDecompressing); break;
            default: break;  // compressed
          }
        }
        const DecompressionPlanner memoized(g, states, pre_all(k), nullptr,
                                            /*reference_frontiers=*/false);
        const DecompressionPlanner reference(g, states, pre_all(k), nullptr,
                                             /*reference_frontiers=*/true);
        for (cfg::BlockId b = 0; b < g.block_count(); ++b) {
          EXPECT_EQ(memoized.plan_on_exit(b, 0), reference.plan_on_exit(b, 0))
              << "exit block " << b << " k " << k << " pattern " << pattern;
        }
      }
    }
  }
}

TEST(Planner, BorrowedGeometryMatchesOwnedExactly) {
  // Campaign engines borrow one materialized (CFG, k) FrontierCache
  // instead of owning one; the plans must be identical for every exit
  // block and a spread of dynamic forms.
  for (const cfg::Cfg& g : {cfg::figure2_cfg(), cfg::figure5_cfg()}) {
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      FrontierCache shared(g, k);
      shared.materialize();
      for (const unsigned pattern : {0u, 1u, 2u}) {
        StateTable states(g.block_count());
        for (cfg::BlockId b = 0; b < g.block_count(); ++b) {
          if ((b + pattern) % 3 == 1) {
            states.set_form(b, BlockForm::kDecompressed);
          }
        }
        const DecompressionPlanner owned(g, states, pre_all(k), nullptr);
        const DecompressionPlanner borrowed(g, states, pre_all(k), nullptr,
                                            /*reference_frontiers=*/false,
                                            &shared);
        for (cfg::BlockId b = 0; b < g.block_count(); ++b) {
          EXPECT_EQ(borrowed.plan_on_exit(b, 0), owned.plan_on_exit(b, 0))
              << "exit block " << b << " k " << k << " pattern " << pattern;
        }
      }
    }
  }
}

TEST(Planner, BorrowedGeometryMustMatchKeyAndBeMaterialized) {
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  FrontierCache wrong_k(g, 3);
  wrong_k.materialize();
  EXPECT_THROW(DecompressionPlanner(g, states, pre_all(2), nullptr, false,
                                    &wrong_k),
               apcc::CheckError)
      << "borrowing k=3 geometry for a k=2 policy must be rejected";
  FrontierCache lazy(g, 2);
  EXPECT_THROW(
      DecompressionPlanner(g, states, pre_all(2), nullptr, false, &lazy),
      apcc::CheckError)
      << "a lazily-filled cache is mutable and must not be shared";
  const cfg::Cfg other = cfg::figure5_cfg();
  FrontierCache other_cfg(other, 2);
  other_cfg.materialize();
  EXPECT_THROW(DecompressionPlanner(g, states, pre_all(2), nullptr, false,
                                    &other_cfg),
               apcc::CheckError)
      << "geometry computed on a different CFG must be rejected";
}

TEST(Planner, MemoizedSeesFormChangesBetweenExits) {
  // The cache memoizes geometry only; the dynamic form filter must see
  // state changes made after construction.
  const cfg::Cfg g = cfg::figure2_cfg();
  StateTable states = all_compressed(g);
  const DecompressionPlanner planner(g, states, pre_all(2), nullptr);
  const auto before = planner.plan_on_exit(0, 0);
  ASSERT_FALSE(before.empty());
  for (const cfg::BlockId b : before) {
    states.set_form(b, BlockForm::kDecompressed);
  }
  EXPECT_TRUE(planner.plan_on_exit(0, 0).empty());
  states.set_form(before.front(), BlockForm::kCompressed);
  EXPECT_EQ(planner.plan_on_exit(0, 0),
            (std::vector<cfg::BlockId>{before.front()}));
}

}  // namespace
}  // namespace apcc::runtime
