// End-to-end reproduction of the paper's Figure 5 walkthrough (§5).
//
// Access pattern B0, B1, B0, B1, B3 with k=2 and on-demand decompression.
// The paper traces nine steps; this test asserts the engine produces the
// same causal sequence:
//   (1,2) entering compressed B0 faults; handler decompresses B0->B0'
//   (3,4) entering compressed B1 faults; decompress B1->B1' and patch the
//         branch in B0'
//   (5,6) re-entering B0 needs NO decompression, only a patch of B1''s
//         branch (one more exception)
//   (7)   re-entering B1 through the patched branch: no exception at all
//   (8,9) entering B3: B0's counter has reached k=2, so B0' is deleted
//         (unpatching its remember set) and B3 is decompressed
#include <gtest/gtest.h>

#include "cfg/paper_graphs.hpp"
#include "core/system.hpp"

namespace apcc::sim {
namespace {

struct RecordedEvent {
  EventKind kind;
  cfg::BlockId block;
  cfg::BlockId aux;
};

class Figure5Test : public ::testing::Test {
 protected:
  void run_walkthrough() {
    cfg::Cfg graph = cfg::figure5_cfg();
    core::SystemConfig config;
    config.codec = compress::CodecKind::kSharedHuffman;
    config.policy.strategy = runtime::DecompressionStrategy::kOnDemand;
    config.policy.compress_k = 2;
    auto system = core::CodeCompressionSystem::from_cfg(
        std::move(graph),
        [](const cfg::BasicBlock& b) {
          return compress::Bytes(b.size_bytes(), 0x90);
        },
        config);
    result_ = system.run_with_events(
        cfg::figure5_trace(), [this](const Event& e) {
          events_.push_back(RecordedEvent{e.kind, e.block, e.aux});
        });
  }

  /// Events of the given kinds, in order.
  std::vector<RecordedEvent> filtered(
      std::initializer_list<EventKind> kinds) const {
    std::vector<RecordedEvent> out;
    for (const auto& e : events_) {
      for (const auto k : kinds) {
        if (e.kind == k) out.push_back(e);
      }
    }
    return out;
  }

  std::vector<RecordedEvent> events_;
  RunResult result_;
};

TEST_F(Figure5Test, DecompressionsAreB0B1B3InOrder) {
  run_walkthrough();
  const auto decomp = filtered({EventKind::kDemandDecompress});
  ASSERT_EQ(decomp.size(), 3u) << "exactly B0, B1, B3 are decompressed";
  EXPECT_EQ(decomp[0].block, 0u);
  EXPECT_EQ(decomp[1].block, 1u);
  EXPECT_EQ(decomp[2].block, 3u);
}

TEST_F(Figure5Test, B0IsNotDecompressedTwice) {
  run_walkthrough();
  EXPECT_EQ(result_.demand_decompressions, 3u)
      << "step (5): re-entering B0 must not decompress again";
}

TEST_F(Figure5Test, ExceptionsMatchTheFourFaultingSteps) {
  run_walkthrough();
  const auto faults = filtered({EventKind::kException});
  // Steps 1, 3, 5 and 8 fault; step 7 (B0'->B1') does not.
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0].block, 0u);
  EXPECT_EQ(faults[1].block, 1u);
  EXPECT_EQ(faults[2].block, 0u);
  EXPECT_EQ(faults[3].block, 3u);
}

TEST_F(Figure5Test, StepSevenIsExceptionFree) {
  run_walkthrough();
  // The second entry to B1 (trace position 3) must produce an enter event
  // with no exception between the preceding exit and it.
  bool saw_exit_b0_second = false;
  int b0_exits = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto& e = events_[i];
    if (e.kind == EventKind::kBlockExit && e.block == 0) {
      ++b0_exits;
      if (b0_exits == 2) {
        saw_exit_b0_second = true;
        // Scan forward to the next enter; no exception may intervene.
        for (std::size_t j = i + 1; j < events_.size(); ++j) {
          if (events_[j].kind == EventKind::kBlockEnter) break;
          EXPECT_NE(events_[j].kind, EventKind::kException)
              << "step (7) must be exception-free";
        }
      }
    }
  }
  EXPECT_TRUE(saw_exit_b0_second);
}

TEST_F(Figure5Test, PatchesRecordTheBranchRewrites) {
  run_walkthrough();
  const auto patches = filtered({EventKind::kPatch});
  // Step 4: branch in B0 -> B1'; step 6: branch in B1' -> B0';
  // step 9: branch in B1' -> B3'.
  ASSERT_EQ(patches.size(), 3u);
  EXPECT_EQ(patches[0].block, 1u);
  EXPECT_EQ(patches[0].aux, 0u);
  EXPECT_EQ(patches[1].block, 0u);
  EXPECT_EQ(patches[1].aux, 1u);
  EXPECT_EQ(patches[2].block, 3u);
  EXPECT_EQ(patches[2].aux, 1u);
}

TEST_F(Figure5Test, B0DeletedExactlyOnceAtStepNine) {
  run_walkthrough();
  const auto deletes = filtered({EventKind::kDelete});
  ASSERT_EQ(deletes.size(), 1u);
  EXPECT_EQ(deletes[0].block, 0u);
  // The delete must happen after the second exit from B1 (edge B1->B3)
  // and before B3's decompression.
  std::size_t delete_pos = 0;
  std::size_t b3_decompress_pos = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].kind == EventKind::kDelete) delete_pos = i;
    if (events_[i].kind == EventKind::kDemandDecompress &&
        events_[i].block == 3) {
      b3_decompress_pos = i;
    }
  }
  EXPECT_LT(delete_pos, b3_decompress_pos)
      << "step (9): B0' deleted as B3 is reached";
}

TEST_F(Figure5Test, DeleteUnpatchesTheRememberSet) {
  run_walkthrough();
  const auto unpatches = filtered({EventKind::kUnpatch});
  // B0's remember set contains B1 (patched at step 6).
  ASSERT_EQ(unpatches.size(), 1u);
  EXPECT_EQ(unpatches[0].block, 0u);
  EXPECT_EQ(unpatches[0].aux, 1u);
  EXPECT_EQ(result_.unpatches, 1u);
}

TEST_F(Figure5Test, B2StaysCompressedThroughout) {
  run_walkthrough();
  for (const auto& e : events_) {
    EXPECT_NE(e.block == 2 && (e.kind == EventKind::kDemandDecompress ||
                               e.kind == EventKind::kPredecompressIssue),
              true)
        << "B2 is never on the path and must stay compressed";
  }
}

TEST_F(Figure5Test, CountersSummarise) {
  run_walkthrough();
  EXPECT_EQ(result_.block_entries, 5u);
  EXPECT_EQ(result_.exceptions, 4u);
  EXPECT_EQ(result_.deletions, 1u);
  EXPECT_EQ(result_.patches, 3u);
  EXPECT_EQ(result_.predecompressions, 0u);
  EXPECT_EQ(result_.stall_cycles, 0u);
  EXPECT_GT(result_.total_cycles, result_.baseline_cycles);
}

TEST_F(Figure5Test, MemoryNeverHoldsMoreThanTwoCopies) {
  // Along B0,B1,B0,B1,B3 with k=2, at most two decompressed copies
  // coexist; the largest coexisting pair is B1'+B3' (B0' is deleted on
  // the edge into B3, before B3 is decompressed).
  cfg::Cfg graph = cfg::figure5_cfg();
  const std::uint64_t b1 = graph.block(1).size_bytes();
  const std::uint64_t b3 = graph.block(3).size_bytes();
  core::SystemConfig config;
  config.policy.compress_k = 2;
  auto system = core::CodeCompressionSystem::from_cfg(
      std::move(graph),
      [](const cfg::BasicBlock& b) {
        return compress::Bytes(b.size_bytes(), 0x90);
      },
      config);
  const RunResult r = system.run(cfg::figure5_trace());
  const std::uint64_t fixed = r.compressed_area_bytes;
  EXPECT_LE(r.peak_occupancy_bytes, fixed + b1 + b3)
      << "at most two decompressed copies at any instant";
}

}  // namespace
}  // namespace apcc::sim
