// BlockImage tests: construction, per-block round trips, ratios and slots.
#include <gtest/gtest.h>

#include "cfg/paper_graphs.hpp"
#include "isa/isa.hpp"
#include "runtime/block_image.hpp"
#include "workloads/synth_bytes.hpp"

namespace apcc::runtime {
namespace {

BlockImage make_image(compress::CodecKind kind) {
  cfg::Cfg g = cfg::figure2_cfg();
  return make_block_image(
      g,
      [](const cfg::BasicBlock& b) {
        return workloads::synthesize_block_bytes(b);
      },
      kind);
}

TEST(BlockImage, BlockCountMatchesCfg) {
  const BlockImage image = make_image(compress::CodecKind::kSharedHuffman);
  EXPECT_EQ(image.block_count(), 10u);
}

TEST(BlockImage, EveryBlockRoundTrips) {
  for (const auto kind :
       {compress::CodecKind::kSharedHuffman, compress::CodecKind::kLzss,
        compress::CodecKind::kCodePack, compress::CodecKind::kMtfRle,
        compress::CodecKind::kFpc, compress::CodecKind::kBdi,
        compress::CodecKind::kAdaptive}) {
    const BlockImage image = make_image(kind);
    for (cfg::BlockId b = 0; b < image.block_count(); ++b) {
      EXPECT_NO_THROW(image.verify_block(b)) << codec_kind_name(kind);
    }
  }
}

TEST(BlockImage, OriginalSizesMatchCfgBlocks) {
  const cfg::Cfg g = cfg::figure2_cfg();
  const BlockImage image = make_image(compress::CodecKind::kSharedHuffman);
  for (cfg::BlockId b = 0; b < image.block_count(); ++b) {
    EXPECT_EQ(image.original_size(b), g.block(b).size_bytes());
  }
}

TEST(BlockImage, TrainedCodecCompressesSynthBytes) {
  const BlockImage image = make_image(compress::CodecKind::kSharedHuffman);
  EXPECT_LT(image.ratio(), 0.95);
  EXPECT_GT(image.ratio(), 0.2);
}

TEST(BlockImage, NullCodecRatioOne) {
  const BlockImage image = make_image(compress::CodecKind::kNull);
  EXPECT_DOUBLE_EQ(image.ratio(), 1.0);
}

TEST(BlockImage, SlotSizesPairUp) {
  const BlockImage image = make_image(compress::CodecKind::kSharedHuffman);
  const auto sizes = image.slot_sizes();
  ASSERT_EQ(sizes.size(), image.block_count());
  for (cfg::BlockId b = 0; b < image.block_count(); ++b) {
    EXPECT_EQ(sizes[b].first, image.compressed_size(b));
    EXPECT_EQ(sizes[b].second, image.original_size(b));
  }
}

TEST(BlockImage, MismatchedByteCountRejected) {
  const cfg::Cfg g = cfg::figure5_cfg();
  std::vector<compress::Bytes> bytes(2);  // CFG has 4 blocks
  EXPECT_THROW(
      BlockImage(g, std::move(bytes),
                 compress::make_codec(compress::CodecKind::kNull)),
      apcc::CheckError);
}

TEST(BlockImage, NullCodecPointerRejected) {
  const cfg::Cfg g = cfg::figure5_cfg();
  std::vector<compress::Bytes> bytes(g.block_count());
  EXPECT_THROW(BlockImage(g, std::move(bytes), nullptr), apcc::CheckError);
}

TEST(BlockImage, OutOfRangeBlockThrows) {
  const BlockImage image = make_image(compress::CodecKind::kNull);
  EXPECT_THROW((void)image.block(10), apcc::CheckError);
}

TEST(SynthBytes, DeterministicPerBlockAndSeed) {
  const cfg::Cfg g = cfg::figure5_cfg();
  const auto a = workloads::synthesize_block_bytes(g.block(0), 1);
  const auto b = workloads::synthesize_block_bytes(g.block(0), 1);
  const auto c = workloads::synthesize_block_bytes(g.block(0), 2);
  const auto d = workloads::synthesize_block_bytes(g.block(1), 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(a.size(), g.block(0).size_bytes());
}

TEST(SynthBytes, ProducesDecodableInstructions) {
  const cfg::Cfg g = cfg::figure2_cfg();
  const auto bytes = workloads::synthesize_block_bytes(g.block(3));
  ASSERT_EQ(bytes.size() % 4, 0u);
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    const std::uint32_t word =
        static_cast<std::uint32_t>(bytes[i]) |
        (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[i + 3]) << 24);
    EXPECT_NO_THROW((void)isa::decode(word));
  }
}

}  // namespace
}  // namespace apcc::runtime
