// k-edge compression manager tests, pinned to the paper's semantics:
// Figure 1 (compress B1 just before entering B4 with k=2) and the counter
// discipline the Figure 5 walkthrough implies.
#include <gtest/gtest.h>

#include "runtime/kedge.hpp"
#include "support/rng.hpp"

namespace apcc::runtime {
namespace {

StateTable make_states(std::size_t n,
                       std::initializer_list<cfg::BlockId> decompressed) {
  StateTable t(n);
  for (const auto b : decompressed) {
    t.set_form(b, BlockForm::kDecompressed);
  }
  return t;
}

TEST(KEdge, RequiresPositiveK) {
  StateTable t(2);
  EXPECT_THROW(KEdgeCompressionManager(t, 0), apcc::CheckError);
}

TEST(KEdge, Figure1ScenarioWithKEqualsTwo) {
  // Blocks B0..B5; B1 was just visited (decompressed). After edges
  // a (into B3) and b (into B4), B1's copy must be scheduled for deletion
  // "just before the execution enters basic block B4".
  StateTable t = make_states(6, {1});
  KEdgeCompressionManager kedge(t, 2);
  kedge.on_block_executed(1);
  EXPECT_TRUE(kedge.on_edge_traversed(3).empty()) << "after edge a";
  const auto deleted = kedge.on_edge_traversed(4);
  ASSERT_EQ(deleted.size(), 1u) << "after edge b";
  EXPECT_EQ(deleted[0], 1u);
}

TEST(KEdge, TargetBlockIsNotIncremented) {
  // Figure 5 step (5): re-entering B0 via B1->B0 must NOT increment B0's
  // counter -- otherwise B0' would be deleted at that moment.
  StateTable t = make_states(4, {0, 1});
  KEdgeCompressionManager kedge(t, 2);
  kedge.on_block_executed(0);
  EXPECT_TRUE(kedge.on_edge_traversed(1).empty());  // B0: 1
  EXPECT_EQ(t[0].kedge_counter, 1u);
  const auto deleted = kedge.on_edge_traversed(0);  // into B0: not bumped
  EXPECT_TRUE(deleted.empty());
  EXPECT_EQ(t[0].kedge_counter, 1u) << "target must be exempt";
  EXPECT_EQ(t[1].kedge_counter, 1u) << "source is incremented";
}

TEST(KEdge, ExecutionResetsCounter) {
  StateTable t = make_states(3, {0});
  KEdgeCompressionManager kedge(t, 3);
  (void)kedge.on_edge_traversed(1);
  (void)kedge.on_edge_traversed(2);
  EXPECT_EQ(t[0].kedge_counter, 2u);
  kedge.on_block_executed(0);
  EXPECT_EQ(t[0].kedge_counter, 0u);
}

TEST(KEdge, CompressedBlocksAreIgnored) {
  StateTable t = make_states(3, {});
  t.set_form(0, BlockForm::kCompressed);
  KEdgeCompressionManager kedge(t, 1);
  EXPECT_TRUE(kedge.on_edge_traversed(1).empty());
  EXPECT_EQ(t[0].kedge_counter, 0u);
}

TEST(KEdge, DecompressingBlocksAreIgnored) {
  StateTable t = make_states(3, {});
  t.set_form(0, BlockForm::kDecompressing);
  KEdgeCompressionManager kedge(t, 1);
  EXPECT_TRUE(kedge.on_edge_traversed(1).empty());
}

TEST(KEdge, ExecutingBlockNeverReturned) {
  StateTable t = make_states(3, {0});
  t.set_executing(0, true);
  KEdgeCompressionManager kedge(t, 1);
  const auto deleted = kedge.on_edge_traversed(1);
  EXPECT_TRUE(deleted.empty()) << "pinned block must survive";
  EXPECT_EQ(t[0].kedge_counter, 1u);
}

TEST(KEdge, KOneCompressesImmediately) {
  // 1-edge: a block's copy dies on the first edge after its execution.
  StateTable t = make_states(2, {0});
  KEdgeCompressionManager kedge(t, 1);
  kedge.on_block_executed(0);
  const auto deleted = kedge.on_edge_traversed(1);
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0], 0u);
}

TEST(KEdge, LargeKDelaysDeletion) {
  StateTable t = make_states(2, {0});
  KEdgeCompressionManager kedge(t, 10);
  kedge.on_block_executed(0);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(kedge.on_edge_traversed(1).empty()) << "edge " << i;
  }
  EXPECT_EQ(kedge.on_edge_traversed(1).size(), 1u);
}

TEST(KEdge, MultipleBlocksDeletedTogether) {
  StateTable t = make_states(4, {0, 1, 2});
  KEdgeCompressionManager kedge(t, 1);
  const auto deleted = kedge.on_edge_traversed(3);
  EXPECT_EQ(deleted.size(), 3u);
}

TEST(KEdge, CountersAdvanceIndependently) {
  StateTable t = make_states(3, {0, 1});
  KEdgeCompressionManager kedge(t, 3);
  (void)kedge.on_edge_traversed(2);   // 0:1, 1:1
  kedge.on_block_executed(1);         // 1 reset
  (void)kedge.on_edge_traversed(2);   // 0:2, 1:1
  EXPECT_EQ(t[0].kedge_counter, 2u);
  EXPECT_EQ(t[1].kedge_counter, 1u);
}

// -------------------------------------------------- StateTable helpers

TEST(StateTable, DecompressedBlocksListing) {
  StateTable t = make_states(5, {1, 3});
  EXPECT_EQ(t.decompressed_blocks(), (std::vector<cfg::BlockId>{1, 3}));
  EXPECT_EQ(t.count(BlockForm::kDecompressed), 2u);
  EXPECT_EQ(t.count(BlockForm::kCompressed), 3u);
}

TEST(StateTable, LruVictimOldestFirst) {
  StateTable t = make_states(4, {0, 1, 2});
  t.touch(0, 30);
  t.touch(1, 10);
  t.touch(2, 20);
  EXPECT_EQ(t.lru_victim(cfg::kInvalidBlock), 1u);
}

TEST(StateTable, LruVictimSkipsProtectedAndExecuting) {
  StateTable t = make_states(3, {0, 1, 2});
  t.touch(0, 1);
  t.touch(1, 2);
  t.touch(2, 3);
  t.set_executing(0, true);
  EXPECT_EQ(t.lru_victim(1), 2u) << "0 executing, 1 protected -> 2";
}

TEST(StateTable, LruVictimNoneAvailable) {
  StateTable t = make_states(2, {});
  EXPECT_EQ(t.lru_victim(cfg::kInvalidBlock), cfg::kInvalidBlock);
}

TEST(StateTable, MruVictimNewestFirstLowestIdOnTies) {
  StateTable t = make_states(5, {0, 1, 2, 3});
  t.touch(0, 10);
  t.touch(1, 30);
  t.touch(2, 30);
  t.touch(3, 20);
  EXPECT_EQ(t.mru_victim(cfg::kInvalidBlock), 1u)
      << "ties on last_use_time resolve to the lowest id";
  EXPECT_EQ(t.mru_victim(1), 2u);
}

TEST(StateTable, LargestVictimBySizeLowestIdOnTies) {
  StateTable t = make_states(4, {0, 1, 2});
  t.set_block_sizes({64, 128, 128, 256});
  EXPECT_EQ(t.largest_victim(cfg::kInvalidBlock), 1u);
  EXPECT_EQ(t.largest_victim(1), 2u);
  t.set_executing(1, true);
  t.set_executing(2, true);
  EXPECT_EQ(t.largest_victim(cfg::kInvalidBlock), 0u);
}

TEST(StateTable, LargestVictimRequiresPositiveSize) {
  StateTable t = make_states(3, {0, 1});
  EXPECT_EQ(t.largest_victim(cfg::kInvalidBlock), cfg::kInvalidBlock)
      << "all sizes zero -> no largest victim (strict > 0, as the "
         "historical scan)";
}

TEST(StateTable, VictimQueriesMatchReferenceScans) {
  apcc::Rng rng(7);
  StateTable t(32);
  std::vector<std::uint64_t> sizes;
  for (int b = 0; b < 32; ++b) sizes.push_back(rng.next_below(8) * 16);
  t.set_block_sizes(sizes);
  for (int step = 0; step < 2000; ++step) {
    const auto b = static_cast<cfg::BlockId>(rng.next_below(32));
    switch (rng.next_below(4)) {
      case 0:
        t.set_form(b, static_cast<BlockForm>(rng.next_below(3)));
        break;
      case 1: t.touch(b, rng.next_below(64)); break;
      case 2: t.set_executing(b, rng.next_bool(0.2)); break;
      default: break;
    }
    const auto protect = rng.next_bool(0.5)
                             ? static_cast<cfg::BlockId>(rng.next_below(32))
                             : cfg::kInvalidBlock;
    ASSERT_EQ(t.lru_victim(protect), t.lru_victim_reference(protect));
    ASSERT_EQ(t.mru_victim(protect), t.mru_victim_reference(protect));
    ASSERT_EQ(t.largest_victim(protect),
              t.largest_victim_reference(protect));
  }
}

TEST(StateTable, DecompressedUnorderedTracksMembership) {
  StateTable t = make_states(6, {1, 4});
  EXPECT_EQ(t.decompressed_unordered().size(), 2u);
  t.set_form(1, BlockForm::kCompressed);
  t.set_form(2, BlockForm::kDecompressed);
  t.set_form(4, BlockForm::kDecompressing);
  EXPECT_EQ(t.decompressed_blocks(), (std::vector<cfg::BlockId>{2}));
  EXPECT_EQ(t.count(BlockForm::kDecompressing), 1u);
}

TEST(StateTable, RememberSetDeduplicates) {
  StateTable t(1);
  auto s = t[0];
  s.add_patch(3);
  s.add_patch(3);
  s.add_patch(5);
  EXPECT_EQ(s.remember_set().size(), 2u);
  EXPECT_TRUE(s.is_patched_for(3));
  EXPECT_FALSE(s.is_patched_for(7));
  s.clear_patches();
  EXPECT_TRUE(s.remember_set().empty());
}

TEST(StateBatch, CellsAreIndependentStableViews) {
  StateBatch batch(4, 3);
  EXPECT_EQ(batch.block_count(), 4u);
  EXPECT_EQ(batch.cell_count(), 3u);
  StateTable& a = batch.cell(0);
  StateTable& b = batch.cell(2);
  EXPECT_EQ(&a, &batch.cell(0)) << "views must be stable across calls";

  a.set_form(1, BlockForm::kDecompressed);
  a.touch(1, 7);
  a[1].kedge_counter = 9;
  a[1].add_patch(0);

  // Cell 2 shares the storage plane but none of the state.
  EXPECT_EQ(b.count(BlockForm::kDecompressed), 0u);
  EXPECT_EQ(b[1].form(), BlockForm::kCompressed);
  EXPECT_EQ(b[1].kedge_counter, 0u);
  EXPECT_FALSE(b[1].is_patched_for(0));

  b.set_form(1, BlockForm::kDecompressed);
  EXPECT_EQ(b[1].last_use_time(), 0u);
  EXPECT_EQ(a[1].last_use_time(), 7u);
  EXPECT_EQ(a.lru_victim(cfg::kInvalidBlock), 1u);
  EXPECT_EQ(b.lru_victim(cfg::kInvalidBlock), 1u);
}

}  // namespace
}  // namespace apcc::runtime
