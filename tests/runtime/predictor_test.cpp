// Predictor tests for pre-decompress-single (§4 / E7).
#include <gtest/gtest.h>

#include "cfg/paper_graphs.hpp"
#include "runtime/predictor.hpp"

namespace apcc::runtime {
namespace {

TEST(ProfilePredictor, PicksHighProbabilitySuccessor) {
  cfg::Cfg g = cfg::figure5_cfg();
  // Bias B0 -> B1 heavily.
  g.edge(g.find_edge(0, 1)).probability = 0.95;
  g.edge(g.find_edge(0, 2)).probability = 0.05;
  g.normalize_probabilities();
  const ProfilePredictor p(g, 2);
  EXPECT_EQ(p.predict(0, {1, 2}, 0), 1u);
}

TEST(ProfilePredictor, RespectsCandidateFilter) {
  cfg::Cfg g = cfg::figure5_cfg();
  g.edge(g.find_edge(0, 1)).probability = 0.95;
  g.edge(g.find_edge(0, 2)).probability = 0.05;
  g.normalize_probabilities();
  const ProfilePredictor p(g, 2);
  // B1 is likelier but not a candidate (already decompressed, say).
  EXPECT_EQ(p.predict(0, {2}, 0), 2u);
}

TEST(ProfilePredictor, DeeperFrontierUsesPathProbabilities) {
  cfg::Cfg g = cfg::figure2_cfg();
  // Weight the path B0 -> B2 -> B5 heavily.
  for (cfg::EdgeId e = 0; e < g.edge_count(); ++e) {
    g.edge(e).probability = 0.0;
  }
  g.edge(g.find_edge(0, 2)).probability = 0.9;
  g.edge(g.find_edge(2, 5)).probability = 0.9;
  g.normalize_probabilities();
  const ProfilePredictor p(g, 2);
  EXPECT_EQ(p.predict(0, {4, 5, 8, 9}, 0), 5u);
}

TEST(ProfilePredictor, EmptyCandidatesThrow) {
  const cfg::Cfg g = cfg::figure5_cfg();
  const ProfilePredictor p(g, 2);
  EXPECT_THROW((void)p.predict(0, {}, 0), apcc::CheckError);
}

TEST(StaticPredictor, PrefersDeeperLoops) {
  // figure1: B3/B4 form the inner loop; B5 is on the outer loop only.
  const cfg::Cfg g = cfg::figure1_cfg();
  const StaticPredictor p(g, 2);
  EXPECT_EQ(p.predict(3, {4, 5}, 0), 4u)
      << "B4 sits in the deeper (inner) loop";
}

TEST(StaticPredictor, TieBreaksByDistanceThenId) {
  const cfg::Cfg g = cfg::figure2_cfg();  // acyclic: all depths 0
  const StaticPredictor p(g, 3);
  // From B0: B1/B2 at distance 1, B3..B5 at 2 -> nearest wins.
  EXPECT_EQ(p.predict(0, {1, 3}, 0), 1u);
  // Equal depth and distance -> lowest id.
  EXPECT_EQ(p.predict(0, {1, 2}, 0), 1u);
}

TEST(StaticPredictor, BorrowedGeometryPredictsIdenticallyToOwned) {
  // Campaign engines hand the static predictor the same materialized
  // (CFG, k) cache their planner borrows; predictions must not change.
  for (const cfg::Cfg& g : {cfg::figure1_cfg(), cfg::figure2_cfg()}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      FrontierCache shared(g, k);
      shared.materialize();
      const StaticPredictor owned(g, k);
      const StaticPredictor borrowed(g, k, &shared);
      for (cfg::BlockId from = 0; from < g.block_count(); ++from) {
        std::vector<cfg::BlockId> candidates;
        for (const auto& entry : shared.candidates(from)) {
          candidates.push_back(entry.block);
        }
        if (candidates.empty()) continue;
        EXPECT_EQ(borrowed.predict(from, candidates, 0),
                  owned.predict(from, candidates, 0))
            << "from block " << from << " k " << k;
      }
    }
  }
}

TEST(StaticPredictor, BorrowedGeometryMustMatchKeyAndBeMaterialized) {
  const cfg::Cfg g = cfg::figure2_cfg();
  FrontierCache wrong_k(g, 3);
  wrong_k.materialize();
  EXPECT_THROW(StaticPredictor(g, 2, &wrong_k), apcc::CheckError);
  FrontierCache lazy(g, 2);
  EXPECT_THROW(StaticPredictor(g, 2, &lazy), apcc::CheckError);
}

TEST(OraclePredictor, PicksNextReachableBeyondTheImmediateSuccessor) {
  const cfg::Cfg g = cfg::figure5_cfg();
  const cfg::BlockTrace trace = {0, 1, 0, 1, 3};
  const OraclePredictor p(g, trace);
  // The oracle skips trace_index+1 (no lead time to exploit there).
  // At index 0, candidates {0, 3}: the first hit from index 2 on is 0.
  EXPECT_EQ(p.predict(0, {0, 3}, 0), 0u);
  // At index 1, candidates {0, 3}: from index 3 on, B3 comes first
  // (trace[3] = B1 is not a candidate).
  EXPECT_EQ(p.predict(1, {0, 3}, 1), 3u);
  // At index 2, candidates {1, 3}: trace[4] = B3... but trace[3] = B1 is
  // skipped-start+0 -> index 4 is 3? From index 4: B3.
  EXPECT_EQ(p.predict(0, {3}, 2), 3u);
}

TEST(OraclePredictor, FallsBackWhenNeverReached) {
  const cfg::Cfg g = cfg::figure5_cfg();
  const cfg::BlockTrace trace = {0, 1, 3};
  const OraclePredictor p(g, trace);
  EXPECT_EQ(p.predict(0, {2}, 2), 2u) << "never reached: first candidate";
}

TEST(MakePredictor, FactoryKinds) {
  const cfg::Cfg g = cfg::figure5_cfg();
  const cfg::BlockTrace trace = {0, 1, 3};
  EXPECT_EQ(make_predictor(PredictorKind::kProfile, g, 2, trace)->kind(),
            PredictorKind::kProfile);
  EXPECT_EQ(make_predictor(PredictorKind::kStatic, g, 2, trace)->kind(),
            PredictorKind::kStatic);
  EXPECT_EQ(make_predictor(PredictorKind::kOracle, g, 2, trace)->kind(),
            PredictorKind::kOracle);
}

TEST(Names, StrategyAndPredictorNames) {
  EXPECT_STREQ(strategy_name(DecompressionStrategy::kOnDemand), "on-demand");
  EXPECT_STREQ(strategy_name(DecompressionStrategy::kPreAll), "pre-all");
  EXPECT_STREQ(strategy_name(DecompressionStrategy::kPreSingle),
               "pre-single");
  EXPECT_STREQ(predictor_name(PredictorKind::kProfile), "profile");
  EXPECT_STREQ(predictor_name(PredictorKind::kStatic), "static");
  EXPECT_STREQ(predictor_name(PredictorKind::kOracle), "oracle");
}

}  // namespace
}  // namespace apcc::runtime
