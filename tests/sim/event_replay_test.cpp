// Event-replay cross-check: reconstruct the runtime state machine
// independently from the engine's event stream and verify that the
// stream is self-consistent -- no block executes without having been
// decompressed, deletions only hit resident copies, every unpatch had a
// matching patch, and the final counters match the reconstruction.
//
// This is a whole-engine invariant check that does not trust any of the
// engine's internal accounting: only the emitted events.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/system.hpp"
#include "workloads/suite.hpp"

namespace apcc::sim {
namespace {

struct Replay {
  std::set<cfg::BlockId> resident;    // decompressed copies
  std::set<cfg::BlockId> in_flight;   // helper jobs
  std::map<cfg::BlockId, std::set<cfg::BlockId>> patches;  // block -> preds
  std::uint64_t demand = 0, pre_issue = 0, pre_done = 0, deletes = 0;
  std::uint64_t patch_count = 0, unpatch_count = 0, enters = 0;
  std::uint64_t copies_created = 0;  // allocations (races reuse, not create)
  bool ok = true;
  std::string error;

  void fail(const std::string& why) {
    if (ok) {
      ok = false;
      error = why;
    }
  }

  void on_event(const Event& e) {
    switch (e.kind) {
      case EventKind::kBlockEnter:
        ++enters;
        if (!resident.contains(e.block)) {
          fail("block " + std::to_string(e.block) +
               " entered while not resident");
        }
        break;
      case EventKind::kDemandDecompress:
        ++demand;
        // A demand decompression during a helper race reuses the
        // in-flight allocation; only a fresh one creates a copy.
        if (!in_flight.contains(e.block) && !resident.contains(e.block)) {
          ++copies_created;
        }
        in_flight.erase(e.block);
        resident.insert(e.block);
        break;
      case EventKind::kPredecompressIssue:
        ++pre_issue;
        if (resident.contains(e.block)) {
          fail("pre-decompression issued for resident block " +
               std::to_string(e.block));
        }
        ++copies_created;
        in_flight.insert(e.block);
        break;
      case EventKind::kPredecompressDone:
        ++pre_done;
        in_flight.erase(e.block);
        resident.insert(e.block);
        break;
      case EventKind::kDelete:
      case EventKind::kEvict:
        ++deletes;
        if (!resident.contains(e.block)) {
          fail("delete of non-resident block " + std::to_string(e.block));
        }
        resident.erase(e.block);
        patches.erase(e.block);
        break;
      case EventKind::kPatch:
        ++patch_count;
        patches[e.block].insert(e.aux);
        break;
      case EventKind::kUnpatch:
        ++unpatch_count;
        break;
      default:
        break;
    }
  }
};

class EventReplayTest
    : public ::testing::TestWithParam<runtime::DecompressionStrategy> {};

TEST_P(EventReplayTest, StreamIsSelfConsistent) {
  const auto workload =
      workloads::make_workload(workloads::WorkloadKind::kMpeg2Like);
  core::SystemConfig config;
  config.codec = compress::CodecKind::kCodePack;
  config.policy.strategy = GetParam();
  config.policy.compress_k = 8;
  config.policy.predecompress_k = 2;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);

  Replay replay;
  const RunResult r = system.run_with_events(
      workload.trace, [&replay](const Event& e) { replay.on_event(e); });

  EXPECT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.enters, r.block_entries);
  EXPECT_EQ(replay.demand, r.demand_decompressions);
  EXPECT_EQ(replay.pre_issue, r.predecompressions);
  EXPECT_EQ(replay.deletes, r.deletions + r.evictions);
  EXPECT_EQ(replay.patch_count, r.patches);
  EXPECT_EQ(replay.unpatch_count, r.unpatches);
  // Whatever was created and not deleted must still be resident.
  EXPECT_EQ(replay.resident.size() + replay.in_flight.size(),
            replay.copies_created - replay.deletes);
}

TEST_P(EventReplayTest, BudgetModeStreamAlsoConsistent) {
  const auto workload =
      workloads::make_workload(workloads::WorkloadKind::kJpegLike);
  core::SystemConfig config;
  config.policy.strategy = GetParam();
  config.policy.compress_k = 8;
  config.policy.predecompress_k = 2;
  // Tight budget forces the eviction paths through the same checks.
  std::uint64_t largest_executed = 0;
  for (const auto b : workload.trace) {
    largest_executed =
        std::max(largest_executed, workload.cfg.block(b).size_bytes());
  }
  config.policy.memory_budget = largest_executed * 2 + 16;
  const auto system =
      core::CodeCompressionSystem::from_workload(workload, config);

  Replay replay;
  (void)system.run_with_events(
      workload.trace, [&replay](const Event& e) { replay.on_event(e); });
  EXPECT_TRUE(replay.ok) << replay.error;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EventReplayTest,
    ::testing::Values(runtime::DecompressionStrategy::kOnDemand,
                      runtime::DecompressionStrategy::kPreAll,
                      runtime::DecompressionStrategy::kPreSingle),
    [](const ::testing::TestParamInfo<runtime::DecompressionStrategy>& info) {
      std::string name = runtime::strategy_name(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace apcc::sim
