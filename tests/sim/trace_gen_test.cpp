// Trace generator tests: determinism, edge-probability compliance,
// termination.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/paper_graphs.hpp"
#include "sim/trace_gen.hpp"

namespace apcc::sim {
namespace {

TEST(TraceGen, DeterministicForSeed) {
  const cfg::Cfg g = cfg::figure1_cfg();
  TraceGenOptions opts;
  opts.seed = 7;
  opts.max_blocks = 500;
  EXPECT_EQ(generate_trace(g, opts), generate_trace(g, opts));
}

TEST(TraceGen, DifferentSeedsDiverge) {
  const cfg::Cfg g = cfg::figure1_cfg();
  TraceGenOptions a;
  a.seed = 1;
  a.max_blocks = 200;
  TraceGenOptions b = a;
  b.seed = 2;
  EXPECT_NE(generate_trace(g, a), generate_trace(g, b));
}

TEST(TraceGen, StartsAtEntry) {
  const cfg::Cfg g = cfg::figure2_cfg();
  TraceGenOptions opts;
  EXPECT_EQ(generate_trace(g, opts).front(), g.entry());
}

TEST(TraceGen, FollowsOnlyRealEdges) {
  const cfg::Cfg g = cfg::figure1_cfg();
  TraceGenOptions opts;
  opts.max_blocks = 300;
  const auto trace = generate_trace(g, opts);
  EXPECT_NO_THROW(cfg::validate_trace(g, trace));
}

TEST(TraceGen, StopsAtExitBlock) {
  const cfg::Cfg g = cfg::figure2_cfg();  // acyclic, B9 is exit
  TraceGenOptions opts;
  opts.max_blocks = 1000;
  const auto trace = generate_trace(g, opts);
  EXPECT_EQ(trace.back(), 9u);
  EXPECT_LT(trace.size(), 10u) << "acyclic graph: one pass only";
}

TEST(TraceGen, RespectsMaxBlocksOnLoopingGraph) {
  const cfg::Cfg g = cfg::figure1_cfg();  // loops forever
  TraceGenOptions opts;
  opts.max_blocks = 123;
  EXPECT_EQ(generate_trace(g, opts).size(), 123u);
}

TEST(TraceGen, ZeroProbabilityEdgeNeverTaken) {
  cfg::Cfg g = cfg::figure5_cfg();
  // Force B0 -> B1 always; B0 -> B2 never.
  g.edge(g.find_edge(0, 1)).probability = 1.0;
  g.edge(g.find_edge(0, 2)).probability = 0.0;
  // And make B1 always exit to B3 so the walk terminates.
  g.edge(g.find_edge(1, 0)).probability = 0.0;
  g.edge(g.find_edge(1, 3)).probability = 1.0;
  TraceGenOptions opts;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    opts.seed = seed;
    const auto trace = generate_trace(g, opts);
    EXPECT_EQ(std::count(trace.begin(), trace.end(), 2u), 0)
        << "seed " << seed;
  }
}

TEST(TraceGen, BiasedLoopLengthsFollowProbability) {
  cfg::Cfg g = cfg::figure5_cfg();
  // p(loop back) = 0.9: expected ~10 visits to B1 per run.
  g.edge(g.find_edge(0, 1)).probability = 1.0;
  g.edge(g.find_edge(0, 2)).probability = 0.0;
  g.edge(g.find_edge(1, 0)).probability = 0.9;
  g.edge(g.find_edge(1, 3)).probability = 0.1;
  TraceGenOptions opts;
  opts.max_blocks = 100000;
  double total_b1 = 0;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    opts.seed = static_cast<std::uint64_t>(i) + 1;
    const auto trace = generate_trace(g, opts);
    total_b1 += static_cast<double>(
        std::count(trace.begin(), trace.end(), 1u));
  }
  EXPECT_NEAR(total_b1 / runs, 10.0, 1.5);
}

TEST(TraceGen, EmptyCfgRejected) {
  const cfg::Cfg g;
  EXPECT_THROW((void)generate_trace(g, {}), apcc::CheckError);
}

}  // namespace
}  // namespace apcc::sim
