// Tests for the engine extensions beyond the paper's baseline design:
// multiple decompression units (E8) and victim-selection policies (E9),
// plus the demand-vs-helper race rule.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hpp"
#include "workloads/suite.hpp"

namespace apcc::sim {
namespace {

using core::CodeCompressionSystem;
using core::SystemConfig;

const workloads::Workload& jpeg() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kJpegLike);
  return w;
}

SystemConfig pre_all_config(unsigned units, compress::CodecKind codec =
                                                compress::CodecKind::kSharedHuffman) {
  SystemConfig config;
  config.codec = codec;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.compress_k = 16;
  config.policy.predecompress_k = 4;
  config.policy.decompress_units = units;
  return config;
}

TEST(DecompressUnits, ZeroUnitsRejected) {
  SystemConfig config = pre_all_config(0);
  const auto system = CodeCompressionSystem::from_workload(jpeg(), config);
  EXPECT_THROW((void)system.run(), apcc::CheckError);
}

TEST(DecompressUnits, MoreUnitsNeverSlower) {
  std::uint64_t prev = UINT64_MAX;
  for (const unsigned units : {1u, 2u, 4u}) {
    const auto r = CodeCompressionSystem::from_workload(
                       jpeg(), pre_all_config(units))
                       .run();
    EXPECT_LE(r.total_cycles, prev) << units << " units";
    prev = r.total_cycles;
  }
}

TEST(DecompressUnits, MoreUnitsReduceDemandRaces) {
  const auto one =
      CodeCompressionSystem::from_workload(jpeg(), pre_all_config(1)).run();
  const auto four =
      CodeCompressionSystem::from_workload(jpeg(), pre_all_config(4)).run();
  // With more bandwidth, fewer in-flight blocks lose the race to the
  // execution thread's exception handler.
  EXPECT_LE(four.demand_decompressions, one.demand_decompressions);
  EXPECT_LE(four.stall_cycles, one.stall_cycles);
}

TEST(DecompressUnits, BusyCyclesConserved) {
  // Adding units redistributes helper work, it does not create or destroy
  // the per-job cost: total helper busy cycles stay within the single-unit
  // figure (jobs skipped because a block became resident reduce it).
  const auto one =
      CodeCompressionSystem::from_workload(jpeg(), pre_all_config(1)).run();
  const auto four =
      CodeCompressionSystem::from_workload(jpeg(), pre_all_config(4)).run();
  EXPECT_GT(four.decomp_helper_busy_cycles, 0u);
  EXPECT_GT(one.decomp_helper_busy_cycles, 0u);
}

TEST(DemandRace, BackloggedHelperLosesToExceptionHandler) {
  // Slow codec + single unit + wide speculation: the helper queue grows
  // beyond the demand-decompression latency, so some arrivals must take
  // the critical-path fault instead of waiting.
  const auto r =
      CodeCompressionSystem::from_workload(jpeg(), pre_all_config(1)).run();
  EXPECT_GT(r.predecompressions, 0u);
  EXPECT_GT(r.demand_decompressions, 0u)
      << "some entries should win the race against the backlog";
}

// ---------------------------------------------------------------- E9

SystemConfig budget_config(runtime::VictimPolicy policy) {
  SystemConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.compress_k = 8;
  config.policy.victim_policy = policy;
  return config;
}

std::uint64_t tight_budget() {
  static const std::uint64_t budget = [] {
    const auto unbounded = CodeCompressionSystem::from_workload(
                               jpeg(), budget_config(runtime::VictimPolicy::kLru))
                               .run();
    const std::uint64_t ws = unbounded.peak_occupancy_bytes -
                             unbounded.compressed_area_bytes;
    std::uint64_t largest_executed = 0;
    for (const auto b : jpeg().trace) {
      largest_executed =
          std::max(largest_executed, jpeg().cfg.block(b).size_bytes());
    }
    return std::max(ws / 2, largest_executed + 8);
  }();
  return budget;
}

class VictimPolicyTest
    : public ::testing::TestWithParam<runtime::VictimPolicy> {};

TEST_P(VictimPolicyTest, CompletesAndRespectsCap) {
  SystemConfig config = budget_config(GetParam());
  config.policy.memory_budget = tight_budget();
  const auto r =
      CodeCompressionSystem::from_workload(jpeg(), config).run();
  EXPECT_GT(r.evictions, 0u);
  EXPECT_LE(r.peak_occupancy_bytes,
            r.compressed_area_bytes + config.policy.memory_budget);
  EXPECT_EQ(r.block_entries, jpeg().trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VictimPolicyTest,
    ::testing::Values(runtime::VictimPolicy::kLru,
                      runtime::VictimPolicy::kMru,
                      runtime::VictimPolicy::kLargest),
    [](const ::testing::TestParamInfo<runtime::VictimPolicy>& info) {
      return std::string(runtime::victim_policy_name(info.param));
    });

TEST(VictimPolicy, LruBeatsMruOnLoopCode) {
  SystemConfig lru = budget_config(runtime::VictimPolicy::kLru);
  lru.policy.memory_budget = tight_budget();
  SystemConfig mru = budget_config(runtime::VictimPolicy::kMru);
  mru.policy.memory_budget = tight_budget();
  const auto r_lru = CodeCompressionSystem::from_workload(jpeg(), lru).run();
  const auto r_mru = CodeCompressionSystem::from_workload(jpeg(), mru).run();
  EXPECT_LE(r_lru.total_cycles, r_mru.total_cycles)
      << "evicting the hottest copy must not win on loop-structured code";
}

TEST(VictimPolicy, NamesAreDistinct) {
  EXPECT_STREQ(runtime::victim_policy_name(runtime::VictimPolicy::kLru),
               "lru");
  EXPECT_STREQ(runtime::victim_policy_name(runtime::VictimPolicy::kMru),
               "mru");
  EXPECT_STREQ(runtime::victim_policy_name(runtime::VictimPolicy::kLargest),
               "largest");
}

}  // namespace
}  // namespace apcc::sim
