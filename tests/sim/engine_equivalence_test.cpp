// Differential regression test for the indexed engine hot path.
//
// The engine keeps two implementations of its per-step queries: the
// pre-index O(B) full-table scans (EngineConfig::reference_scans, the
// original shipping behaviour) and the indexed structures (ready-event
// min-heap, ordered victim indexes, decompressed-id list) -- and, since
// the FrontierCache, two implementations of the planner's candidate
// query (EngineConfig::reference_frontiers re-runs the per-exit BFS).
// This test runs a policy grid through the full-reference engine
// (both flags), the frontier-reference engine (BFS planner over indexed
// scans), the fully indexed+memoized engine, and the campaign-style
// engine borrowing a shared materialized FrontierCache
// (EngineConfig::shared_frontiers), and asserts RunResult counters and
// emitted event streams are bit-identical across all four, so any
// divergence in settle order, victim tie-breaking, k-edge bookkeeping,
// planner request order, or borrowed-vs-owned geometry fails loudly.
// PR 7 adds the batched axis: BatchEngine steps N cells in lockstep
// over one trace scan, and every cell must still be bit-identical to
// its own per-engine run -- at batch sizes {1, 4, 16} (or the single
// size named by APCC_EQ_BATCH_CELLS, which is how CI gates the batched
// path at 16 explicitly), with heterogeneous owned/borrowed-geometry
// cells mixed in one batch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>
#include <vector>

#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "workloads/suite.hpp"

namespace apcc::sim {
namespace {

using GridParam =
    std::tuple<runtime::DecompressionStrategy, std::uint32_t,
               runtime::VictimPolicy, bool /*background*/, bool /*budget*/>;

struct Capture {
  RunResult result;
  std::vector<Event> events;
};

bool operator==(const Event& a, const Event& b) {
  return a.kind == b.kind && a.time == b.time && a.block == b.block &&
         a.aux == b.aux && a.value == b.value;
}

const workloads::Workload& workload() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kGsmLike);
  return w;
}

// The campaign's geometry key is (CFG, predecompress_k); the grid below
// fixes predecompress_k = 2, so one materialized cache serves every
// borrowed-geometry engine in this suite -- exactly how run_campaign
// shares it.
const runtime::FrontierCache& shared_frontiers() {
  static const auto* cache = [] {
    auto* c = new runtime::FrontierCache(workload().cfg, 2);
    c->materialize();
    return c;
  }();
  return *cache;
}

const runtime::BlockImage& image() {
  static const runtime::BlockImage img = [] {
    std::vector<compress::Bytes> bytes = workload().block_bytes;
    auto codec =
        compress::make_codec(compress::CodecKind::kSharedHuffman, bytes);
    return runtime::BlockImage(workload().cfg, std::move(bytes),
                               std::move(codec));
  }();
  return img;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<GridParam> {
 protected:
  enum class Mode {
    kReference,          // reference scans + reference frontier BFS
    kReferenceFrontiers, // indexed scans, reference frontier BFS
    kIndexed,            // indexed scans + memoized FrontierCache
    kBorrowedGeometry,   // indexed scans + borrowed shared FrontierCache
  };

  static EngineConfig config_for(const GridParam& p, Mode mode) {
    EngineConfig config;
    config.policy.strategy = std::get<0>(p);
    config.policy.compress_k = std::get<1>(p);
    config.policy.predecompress_k = 2;
    config.policy.victim_policy = std::get<2>(p);
    config.policy.background_compression = std::get<3>(p);
    config.policy.background_decompression = std::get<3>(p);
    if (std::get<4>(p)) {
      // Tight budget: forces the eviction and helper-backpressure paths.
      std::uint64_t largest = 0;
      for (const auto b : workload().trace) {
        largest = std::max(largest, workload().cfg.block(b).size_bytes());
      }
      config.policy.memory_budget = largest * 3 + 32;
    }
    config.reference_scans = (mode == Mode::kReference);
    config.reference_frontiers =
        (mode == Mode::kReference || mode == Mode::kReferenceFrontiers);
    if (mode == Mode::kBorrowedGeometry) {
      config.shared_frontiers = &shared_frontiers();
    }
    return config;
  }

  Capture run(Mode mode) {
    Capture c;
    Engine engine(workload().cfg, image(), config_for(GetParam(), mode));
    engine.set_event_sink(
        [&c](const Event& e) { c.events.push_back(e); });
    c.result = engine.run(workload().trace);
    return c;
  }

  static void expect_same_result(const RunResult& a, const RunResult& b,
                                 const char* what) {
    SCOPED_TRACE(what);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.baseline_cycles, b.baseline_cycles);
    EXPECT_EQ(a.busy_cycles, b.busy_cycles);
    EXPECT_EQ(a.stall_cycles, b.stall_cycles);
    EXPECT_EQ(a.exception_cycles, b.exception_cycles);
    EXPECT_EQ(a.critical_decompress_cycles, b.critical_decompress_cycles);
    EXPECT_EQ(a.patch_cycles, b.patch_cycles);
    EXPECT_EQ(a.block_entries, b.block_entries);
    EXPECT_EQ(a.exceptions, b.exceptions);
    EXPECT_EQ(a.demand_decompressions, b.demand_decompressions);
    EXPECT_EQ(a.predecompressions, b.predecompressions);
    EXPECT_EQ(a.predecompress_hits, b.predecompress_hits);
    EXPECT_EQ(a.predecompress_partial, b.predecompress_partial);
    EXPECT_EQ(a.wasted_predecompressions, b.wasted_predecompressions);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.patches, b.patches);
    EXPECT_EQ(a.unpatches, b.unpatches);
    EXPECT_EQ(a.dropped_requests, b.dropped_requests);
    EXPECT_EQ(a.decomp_helper_busy_cycles, b.decomp_helper_busy_cycles);
    EXPECT_EQ(a.comp_helper_busy_cycles, b.comp_helper_busy_cycles);
    EXPECT_EQ(a.original_image_bytes, b.original_image_bytes);
    EXPECT_EQ(a.compressed_area_bytes, b.compressed_area_bytes);
    EXPECT_EQ(a.peak_occupancy_bytes, b.peak_occupancy_bytes);
    EXPECT_EQ(a.avg_occupancy_bytes, b.avg_occupancy_bytes);
  }

  static void expect_same_events(const Capture& ref, const Capture& fast,
                                 const char* what) {
    ASSERT_EQ(ref.events.size(), fast.events.size()) << what;
    for (std::size_t i = 0; i < ref.events.size(); ++i) {
      ASSERT_TRUE(ref.events[i] == fast.events[i])
          << what << ": event " << i << " diverged: reference "
          << event_kind_name(ref.events[i].kind) << "@" << ref.events[i].time
          << " block " << ref.events[i].block << " vs indexed "
          << event_kind_name(fast.events[i].kind) << "@"
          << fast.events[i].time << " block " << fast.events[i].block;
    }
  }
};

TEST_P(EngineEquivalenceTest, IndexedMatchesReferenceBitExactly) {
  const Capture ref = run(Mode::kReference);
  const Capture frontier_ref = run(Mode::kReferenceFrontiers);
  const Capture fast = run(Mode::kIndexed);
  const Capture borrowed = run(Mode::kBorrowedGeometry);

  expect_same_result(ref.result, fast.result,
                     "full-reference vs indexed counters");
  expect_same_result(frontier_ref.result, fast.result,
                     "reference-frontiers vs memoized counters");
  expect_same_result(borrowed.result, fast.result,
                     "borrowed-geometry vs owned-geometry counters");
  expect_same_events(ref, fast, "full-reference vs indexed");
  expect_same_events(frontier_ref, fast, "reference-frontiers vs memoized");
  expect_same_events(borrowed, fast, "borrowed-geometry vs owned-geometry");
}

// The batch widths the lockstep test sweeps. APCC_EQ_BATCH_CELLS=N
// narrows the sweep to one width -- CI's Release job sets 16 so the
// batched path stays gated even if library defaults change.
std::vector<std::size_t> batch_widths() {
  if (const char* env = std::getenv("APCC_EQ_BATCH_CELLS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return {static_cast<std::size_t>(n)};
  }
  return {1, 4, 16};
}

TEST_P(EngineEquivalenceTest, BatchedMatchesPerEngineBitExactly) {
  // Per-engine references for the two cell flavours the batch mixes:
  // owned geometry (BatchEngine injects its own materialized frontier
  // cache) and borrowed campaign geometry (shared_frontiers preset).
  const Capture owned = run(Mode::kIndexed);
  const Capture borrowed = run(Mode::kBorrowedGeometry);

  for (const std::size_t width : batch_widths()) {
    SCOPED_TRACE("batch width " + std::to_string(width));
    std::vector<EngineConfig> configs;
    configs.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      configs.push_back(config_for(
          GetParam(), i % 2 == 0 ? Mode::kIndexed : Mode::kBorrowedGeometry));
    }
    BatchEngine engine(workload().cfg, image(), std::move(configs));
    std::vector<Capture> cells(width);
    for (std::size_t i = 0; i < width; ++i) {
      engine.set_event_sink(i, [&cells, i](const Event& e) {
        cells[i].events.push_back(e);
      });
    }
    const std::vector<CellOutcome> outcomes = engine.run(workload().trace);
    ASSERT_EQ(outcomes.size(), width);
    for (std::size_t i = 0; i < width; ++i) {
      SCOPED_TRACE("cell " + std::to_string(i));
      ASSERT_TRUE(outcomes[i].ok());
      cells[i].result = outcomes[i].result;
      const Capture& ref = i % 2 == 0 ? owned : borrowed;
      expect_same_result(ref.result, cells[i].result,
                         "batched vs per-engine counters");
      expect_same_events(ref, cells[i], "batched vs per-engine events");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(runtime::DecompressionStrategy::kOnDemand,
                          runtime::DecompressionStrategy::kPreAll,
                          runtime::DecompressionStrategy::kPreSingle),
        ::testing::Values(1u, 4u, 32u),
        ::testing::Values(runtime::VictimPolicy::kLru,
                          runtime::VictimPolicy::kMru,
                          runtime::VictimPolicy::kLargest),
        ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name = runtime::strategy_name(std::get<0>(info.param));
      name += "_k" + std::to_string(std::get<1>(info.param));
      name += "_";
      name += runtime::victim_policy_name(std::get<2>(info.param));
      name += std::get<3>(info.param) ? "_bg" : "_inline";
      name += std::get<4>(info.param) ? "_budget" : "_unbounded";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace apcc::sim
