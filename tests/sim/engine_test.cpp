// Engine semantics tests: on-demand behaviour, pre-decompression timing,
// budget/LRU eviction, thread-model ablations, and accounting identities.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/paper_graphs.hpp"
#include "sim/engine.hpp"
#include "sim/trace_gen.hpp"
#include "workloads/synth_bytes.hpp"

namespace apcc::sim {
namespace {

struct Harness {
  cfg::Cfg graph;
  std::unique_ptr<runtime::BlockImage> image;

  explicit Harness(cfg::Cfg g,
                   compress::CodecKind codec = compress::CodecKind::kLzss)
      : graph(std::move(g)) {
    image = std::make_unique<runtime::BlockImage>(runtime::make_block_image(
        graph,
        [](const cfg::BasicBlock& b) {
          return workloads::synthesize_block_bytes(b);
        },
        codec));
  }

  RunResult run(const EngineConfig& config, const cfg::BlockTrace& trace) {
    Engine engine(graph, *image, config);
    return engine.run(trace);
  }
};

/// A trace looping through figure 2: B0 B2 B5 B6 B8 B9 would exit; loop
/// the diamond body a few times via a synthetic multi-pass trace built
/// from valid edges.
cfg::BlockTrace fig2_long_trace() {
  // B0 (B1 B3 B6 B7 B9 is one pass) -- figure2 is acyclic, so repeat the
  // whole path by... using figure1 instead for loops. Here: single pass.
  return {0, 1, 3, 6, 7, 9};
}

TEST(Engine, EmptyTraceRejected) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  EXPECT_THROW((void)h.run(config, {}), apcc::CheckError);
}

TEST(Engine, InvalidTraceRejected) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  EXPECT_THROW((void)h.run(config, {0, 9}), apcc::CheckError);
}

TEST(Engine, OnDemandFaultsOnEveryFirstEntry) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;  // on-demand default
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_EQ(r.block_entries, 6u);
  EXPECT_EQ(r.exceptions, 6u) << "six distinct blocks, six faults";
  EXPECT_EQ(r.demand_decompressions, 6u);
  EXPECT_EQ(r.predecompressions, 0u);
}

TEST(Engine, RevisitWithinKNeedsNoSecondDecompression) {
  Harness h(cfg::figure1_cfg());
  EngineConfig config;
  config.policy.compress_k = 32;  // outlives the 9 edges of this trace
  // B3 and B4 alternate: the inner loop of figure 1.
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 4, 3, 5};
  const RunResult r = h.run(config, trace);
  // Distinct blocks: 0,1,3,4,5 -> five decompressions, no more.
  EXPECT_EQ(r.demand_decompressions, 5u);
  EXPECT_EQ(r.deletions, 0u) << "k=32 outlives this trace";
}

TEST(Engine, SmallKDeletesAndRedecompresses) {
  Harness h(cfg::figure1_cfg());
  EngineConfig config;
  config.policy.compress_k = 1;
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 5};
  const RunResult r = h.run(config, trace);
  EXPECT_GT(r.deletions, 0u);
  EXPECT_GT(r.demand_decompressions, 5u)
      << "k=1 forces re-decompression of revisited blocks";
}

TEST(Engine, LargerKNeverCostsMoreCycles) {
  Harness h(cfg::figure1_cfg());
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 4, 3, 5, 0, 2, 3, 5};
  std::uint64_t prev_cycles = UINT64_MAX;
  for (const std::uint32_t k : {1u, 2u, 4u, 16u}) {
    EngineConfig config;
    config.policy.compress_k = k;
    const RunResult r = h.run(config, trace);
    EXPECT_LE(r.total_cycles, prev_cycles) << "k=" << k;
    prev_cycles = r.total_cycles;
  }
}

TEST(Engine, LargerKNeverShrinksPeakMemory) {
  Harness h(cfg::figure1_cfg());
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 4, 3, 5, 0, 2, 3, 5};
  std::uint64_t prev_peak = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 16u}) {
    EngineConfig config;
    config.policy.compress_k = k;
    const RunResult r = h.run(config, trace);
    EXPECT_GE(r.peak_occupancy_bytes, prev_peak) << "k=" << k;
    prev_peak = r.peak_occupancy_bytes;
  }
}

TEST(Engine, PreAllReducesCriticalPathDecompression) {
  Harness h(cfg::figure2_cfg());
  EngineConfig lazy;
  const RunResult on_demand = h.run(lazy, fig2_long_trace());

  EngineConfig pre;
  pre.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  pre.policy.predecompress_k = 3;
  const RunResult pre_all = h.run(pre, fig2_long_trace());

  EXPECT_LT(pre_all.critical_decompress_cycles,
            on_demand.critical_decompress_cycles);
  EXPECT_LT(pre_all.exceptions, on_demand.exceptions);
  EXPECT_GT(pre_all.predecompressions, 0u);
}

TEST(Engine, PreAllUsesMoreMemoryThanPreSingle) {
  Harness h(cfg::figure2_cfg());
  EngineConfig all;
  all.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  all.policy.predecompress_k = 3;
  const RunResult pre_all = h.run(all, fig2_long_trace());

  EngineConfig single;
  single.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  single.policy.predecompress_k = 3;
  const RunResult pre_single = h.run(single, fig2_long_trace());

  EXPECT_GE(pre_all.peak_occupancy_bytes, pre_single.peak_occupancy_bytes)
      << "pre-all favours performance over memory (§4)";
  EXPECT_GE(pre_all.predecompressions, pre_single.predecompressions);
}

TEST(Engine, PreSingleIssuesAtMostOneRequestPerExit) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  config.policy.predecompress_k = 2;
  std::size_t issues_this_exit = 0;
  std::size_t max_issues = 0;
  Engine engine(h.graph, *h.image, config);
  engine.set_event_sink([&](const Event& e) {
    if (e.kind == EventKind::kBlockExit) {
      issues_this_exit = 0;
    } else if (e.kind == EventKind::kPredecompressIssue) {
      ++issues_this_exit;
      max_issues = std::max(max_issues, issues_this_exit);
    }
  });
  (void)engine.run(fig2_long_trace());
  EXPECT_LE(max_issues, 1u);
}

TEST(Engine, WastedPredecompressionsCounted) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.predecompress_k = 2;
  config.policy.compress_k = 1;  // delete aggressively
  // Path avoids B2/B4/B5/B8, which pre-all will still fetch.
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_GT(r.wasted_predecompressions, 0u)
      << "speculative copies deleted unused must be counted";
}

TEST(Engine, BudgetTriggersLruEvictions) {
  Harness h(cfg::figure2_cfg());
  // Budget: room for roughly two blocks.
  std::uint64_t biggest = 0;
  for (cfg::BlockId b = 0; b < h.graph.block_count(); ++b) {
    biggest = std::max(biggest, h.graph.block(b).size_bytes());
  }
  EngineConfig config;
  config.policy.memory_budget = biggest * 2 + 16;
  config.policy.compress_k = 100;  // never delete via k-edge
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_GT(r.evictions, 0u);
  EXPECT_LE(r.peak_occupancy_bytes,
            r.compressed_area_bytes + config.policy.memory_budget);
}

TEST(Engine, BudgetSmallerThanExecutedBlockFailsAtRuntime) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.memory_budget = 4;
  Engine engine(h.graph, *h.image, config);
  EXPECT_THROW((void)engine.run(fig2_long_trace()), apcc::CheckError);
}

TEST(Engine, UnboundedNeverEvicts) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.compress_k = 100;
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.dropped_requests, 0u);
}

TEST(Engine, InlineCompressionStallsExecution) {
  Harness h(cfg::figure1_cfg());
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 5, 0, 1, 3, 5};
  EngineConfig bg;
  bg.policy.compress_k = 1;
  const RunResult background = h.run(bg, trace);

  EngineConfig inline_comp = bg;
  inline_comp.policy.background_compression = false;
  const RunResult inlined = h.run(inline_comp, trace);

  EXPECT_GT(inlined.total_cycles, background.total_cycles)
      << "the background compression thread must hide deletion cost";
  EXPECT_EQ(inlined.comp_helper_busy_cycles, 0u);
  EXPECT_GT(background.comp_helper_busy_cycles, 0u);
}

TEST(Engine, InlinePredecompressionStealsExecutionCycles) {
  Harness h(cfg::figure2_cfg());
  EngineConfig bg;
  bg.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  bg.policy.predecompress_k = 2;
  const RunResult background = h.run(bg, fig2_long_trace());

  EngineConfig inline_decomp = bg;
  inline_decomp.policy.background_decompression = false;
  const RunResult inlined = h.run(inline_decomp, fig2_long_trace());

  EXPECT_GE(inlined.total_cycles, background.total_cycles);
  EXPECT_EQ(inlined.decomp_helper_busy_cycles, 0u);
}

TEST(Engine, NoRememberSetsMeansEveryEntryFaults) {
  Harness h(cfg::figure1_cfg());
  EngineConfig config;
  config.policy.use_remember_sets = false;
  config.policy.compress_k = 16;
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 5};
  const RunResult r = h.run(config, trace);
  EXPECT_EQ(r.exceptions, r.block_entries)
      << "without branch patching, every relocated entry faults (E6)";
  EXPECT_EQ(r.patches, 0u);
}

TEST(Engine, RememberSetsEliminateRepeatFaults) {
  Harness h(cfg::figure1_cfg());
  EngineConfig config;
  config.policy.compress_k = 16;
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 4, 3, 5};
  const RunResult r = h.run(config, trace);
  EXPECT_LT(r.exceptions, r.block_entries);
}

TEST(Engine, RecompressForRealCostsMoreHelperTime) {
  Harness h(cfg::figure1_cfg());
  const cfg::BlockTrace trace = {0, 1, 3, 4, 3, 4, 3, 5, 0, 1, 3, 5};
  EngineConfig fast;
  fast.policy.compress_k = 1;
  const RunResult deletion = h.run(fast, trace);

  EngineConfig slow = fast;
  slow.policy.recompress_for_real = true;
  const RunResult recompress = h.run(slow, trace);

  EXPECT_GT(recompress.comp_helper_busy_cycles,
            deletion.comp_helper_busy_cycles)
      << "the paper's delete-only design is the cheap path (E6)";
}

TEST(Engine, ParanoidVerifyPasses) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.paranoid_verify = true;
  EXPECT_NO_THROW((void)h.run(config, fig2_long_trace()));
}

TEST(Engine, AccountingIdentities) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.predecompress_k = 2;
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_GE(r.total_cycles, r.busy_cycles);
  EXPECT_EQ(r.baseline_cycles, r.busy_cycles)
      << "baseline equals pure execution work";
  EXPECT_GE(r.slowdown(), 1.0);
  EXPECT_LE(r.predecompress_hits + r.predecompress_partial,
            r.predecompressions + r.demand_decompressions);
  EXPECT_GE(r.peak_occupancy_bytes, r.compressed_area_bytes);
  EXPECT_GE(static_cast<double>(r.peak_occupancy_bytes),
            r.avg_occupancy_bytes);
}

TEST(Engine, EventTimesAreMonotoneForExecutionEvents) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  config.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  config.policy.predecompress_k = 2;
  Engine engine(h.graph, *h.image, config);
  std::uint64_t last = 0;
  bool monotone = true;
  engine.set_event_sink([&](const Event& e) {
    if (e.kind == EventKind::kBlockEnter || e.kind == EventKind::kBlockExit) {
      if (e.time < last) monotone = false;
      last = e.time;
    }
  });
  (void)engine.run(fig2_long_trace());
  EXPECT_TRUE(monotone);
}

TEST(Engine, FreshStatePerRun) {
  Harness h(cfg::figure2_cfg());
  EngineConfig config;
  Engine engine(h.graph, *h.image, config);
  const RunResult a = engine.run(fig2_long_trace());
  const RunResult b = engine.run(fig2_long_trace());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.exceptions, b.exceptions);
  EXPECT_EQ(a.peak_occupancy_bytes, b.peak_occupancy_bytes);
}

TEST(Engine, CompressedImageSmallerThanOriginalWithRealCodec) {
  Harness h(cfg::figure2_cfg(), compress::CodecKind::kSharedHuffman);
  EngineConfig config;
  const RunResult r = h.run(config, fig2_long_trace());
  EXPECT_LT(r.compressed_area_bytes, r.original_image_bytes)
      << "the all-compressed image is the minimum footprint (§5)";
}

}  // namespace
}  // namespace apcc::sim
