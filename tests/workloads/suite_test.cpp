// Workload suite tests: every kernel assembles, executes to completion,
// produces a valid trace, and has the hot/cold structure the experiments
// rely on. Parameterised over all six workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "compress/codec.hpp"
#include "workloads/suite.hpp"

namespace apcc::workloads {
namespace {

class SuiteTest : public ::testing::TestWithParam<WorkloadKind> {
 protected:
  static const Workload& workload() {
    // Build each workload once; they are deterministic.
    static std::map<WorkloadKind, Workload>* cache =
        new std::map<WorkloadKind, Workload>();
    auto it = cache->find(GetParam());
    if (it == cache->end()) {
      it = cache->emplace(GetParam(), make_workload(GetParam())).first;
    }
    return it->second;
  }
};

TEST_P(SuiteTest, BuildsAndHalts) {
  const Workload& w = workload();
  EXPECT_FALSE(w.trace.empty());
  EXPECT_GT(w.program.word_count(), 0u);
  EXPECT_EQ(w.name, workload_name(GetParam()));
}

TEST_P(SuiteTest, TraceIsValidAgainstCfg) {
  const Workload& w = workload();
  EXPECT_NO_THROW(cfg::validate_trace(w.cfg, w.trace));
}

TEST_P(SuiteTest, TraceStartsAtEntry) {
  const Workload& w = workload();
  EXPECT_EQ(w.trace.front(), w.cfg.entry());
}

TEST_P(SuiteTest, HasColdBlocks) {
  const Workload& w = workload();
  std::set<cfg::BlockId> visited(w.trace.begin(), w.trace.end());
  EXPECT_LT(visited.size(), w.cfg.block_count())
      << "every workload must carry never-executed (cold) code";
}

TEST_P(SuiteTest, HotCodeDominatesDynamically) {
  const Workload& w = workload();
  cfg::EdgeProfile profile(w.cfg);
  profile.add_trace(w.trace);
  // The 10 hottest blocks must cover most of the execution: these are
  // loop kernels, the defining property of embedded media code.
  EXPECT_GT(profile.hot_block_coverage(10), 0.5);
}

TEST_P(SuiteTest, BlockBytesMatchCfgSizes) {
  const Workload& w = workload();
  ASSERT_EQ(w.block_bytes.size(), w.cfg.block_count());
  for (cfg::BlockId b = 0; b < w.cfg.block_count(); ++b) {
    EXPECT_EQ(w.block_bytes[b].size(), w.cfg.block(b).size_bytes());
  }
}

TEST_P(SuiteTest, InstructionBytesCompress) {
  const Workload& w = workload();
  const auto codec =
      compress::make_codec(compress::CodecKind::kSharedHuffman,
                           w.block_bytes);
  const double ratio = compress::compression_ratio(*codec, w.block_bytes);
  EXPECT_LT(ratio, 0.9) << "assembled ERISC code must be compressible";
}

TEST_P(SuiteTest, ProfileProbabilitiesApplied) {
  const Workload& w = workload();
  // With apply_profile (default), at least one edge should be strongly
  // biased (loop back edges run many times).
  bool found_hot_edge = false;
  for (const auto& e : w.cfg.edges()) {
    if (e.probability > 0.8) {
      found_hot_edge = true;
      break;
    }
  }
  EXPECT_TRUE(found_hot_edge);
}

TEST_P(SuiteTest, TraceHasTemporalReuse) {
  const Workload& w = workload();
  std::set<cfg::BlockId> visited(w.trace.begin(), w.trace.end());
  EXPECT_GT(w.trace.size(), 2 * visited.size())
      << "loops must revisit blocks (the k-edge trade-off needs reuse)";
}

TEST_P(SuiteTest, ScaleGrowsTraceNotImage) {
  WorkloadOptions small;
  small.scale = 1;
  WorkloadOptions large;
  large.scale = 2;
  const Workload w1 = make_workload(GetParam(), small);
  const Workload w2 = make_workload(GetParam(), large);
  EXPECT_EQ(w1.program.word_count(), w2.program.word_count())
      << "scale changes trip counts, not code size";
  EXPECT_GT(w2.trace.size(), w1.trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SuiteTest, ::testing::ValuesIn(all_workload_kinds()),
    [](const ::testing::TestParamInfo<WorkloadKind>& info) {
      std::string name = workload_name(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Suite, AllKindsEnumerated) {
  EXPECT_EQ(all_workload_kinds().size(), 8u);
}

TEST(Suite, SourceTextIsStable) {
  const std::string a = workload_source(WorkloadKind::kGsmLike);
  const std::string b = workload_source(WorkloadKind::kGsmLike);
  EXPECT_EQ(a, b);
}

TEST(Suite, InvalidScaleRejected) {
  WorkloadOptions opts;
  opts.scale = 0;
  EXPECT_THROW((void)make_workload(WorkloadKind::kAdpcmLike, opts),
               apcc::CheckError);
}

TEST(Suite, WorkloadsDifferStructurally) {
  const Workload a = make_workload(WorkloadKind::kAdpcmLike);
  const Workload b = make_workload(WorkloadKind::kPegwitLike);
  EXPECT_NE(a.program.word_count(), b.program.word_count());
}

}  // namespace
}  // namespace apcc::workloads
