// Property tests over the random program generator: every seed must give
// a program that assembles, terminates, and produces a CFG-valid trace.
#include <gtest/gtest.h>

#include <set>

#include "workloads/random_program.hpp"

namespace apcc::workloads {
namespace {

TEST(RandomProgram, DeterministicPerSeed) {
  RandomProgramOptions opts;
  opts.seed = 5;
  EXPECT_EQ(random_program_source(opts), random_program_source(opts));
}

TEST(RandomProgram, SeedsProduceDistinctPrograms) {
  RandomProgramOptions a;
  a.seed = 1;
  RandomProgramOptions b;
  b.seed = 2;
  EXPECT_NE(random_program_source(a), random_program_source(b));
}

// The core generator property, swept over many seeds.
class RandomProgramProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomProgramProperty, AssemblesHaltsAndValidates) {
  RandomProgramOptions opts;
  opts.seed = GetParam();
  const Workload w = make_random_workload(opts);
  EXPECT_GT(w.program.word_count(), 10u);
  EXPECT_FALSE(w.trace.empty());
  EXPECT_NO_THROW(cfg::validate_trace(w.cfg, w.trace));
  EXPECT_EQ(w.trace.front(), w.cfg.entry());
  ASSERT_EQ(w.block_bytes.size(), w.cfg.block_count());
}

TEST_P(RandomProgramProperty, ColdRegionsStayCold) {
  RandomProgramOptions opts;
  opts.seed = GetParam();
  opts.p_cold = 0.3;  // force cold regions to appear
  const Workload w = make_random_workload(opts);
  std::set<cfg::BlockId> visited(w.trace.begin(), w.trace.end());
  EXPECT_LT(visited.size(), w.cfg.block_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomProgram, DepthLimitRespected) {
  RandomProgramOptions opts;
  opts.seed = 99;
  opts.max_depth = 1;
  EXPECT_NO_THROW((void)make_random_workload(opts));
  opts.max_depth = 4;  // out of supported range
  EXPECT_THROW((void)random_program_source(opts), apcc::CheckError);
}

TEST(RandomProgram, MoreStatementsMakeBiggerPrograms) {
  RandomProgramOptions small;
  small.seed = 3;
  small.statements_per_body = 3;
  RandomProgramOptions big = small;
  big.statements_per_body = 12;
  const Workload ws = make_random_workload(small);
  const Workload wb = make_random_workload(big);
  EXPECT_GT(wb.program.word_count(), ws.program.word_count());
}

TEST(RandomProgram, LeafFunctionsAppearInImage) {
  RandomProgramOptions opts;
  opts.seed = 17;
  opts.leaf_functions = 4;
  const Workload w = make_random_workload(opts);
  EXPECT_EQ(w.program.functions().size(), 5u) << "4 leaves + main";
}

}  // namespace
}  // namespace apcc::workloads
