// AsmBuilder structured-assembly DSL tests: every helper must emit code
// that assembles and behaves as specified when executed.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "workloads/asm_builder.hpp"

namespace apcc::workloads {
namespace {

/// Assemble builder output with a main wrapper and run it; returns the
/// interpreter for register inspection.
isa::Interpreter run(AsmBuilder& b) {
  const isa::Program p = isa::assemble(b.source());
  isa::Interpreter interp(p);
  const auto result = interp.run();
  EXPECT_EQ(result.stop, isa::StopReason::kHalted);
  return interp;
}

TEST(AsmBuilder, GensymIsUnique) {
  AsmBuilder b;
  EXPECT_NE(b.gensym("x"), b.gensym("x"));
  EXPECT_NE(b.gensym("a"), b.gensym("b"));
}

TEST(AsmBuilder, CountedLoopRunsExactly) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.ins("addi r2, r0, 0");
  b.counted_loop("r5", 7, [&] { b.ins("addi r2, r2, 1"); });
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 7);
}

TEST(AsmBuilder, NestedCountedLoopsMultiply) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.ins("addi r2, r0, 0");
  b.counted_loop("r5", 4, [&] {
    b.counted_loop("r6", 3, [&] { b.ins("addi r2, r2, 1"); });
  });
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 12);
}

TEST(AsmBuilder, IfNeTakenAndNotTaken) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.ins("addi r1, r0, 5");
  b.if_ne("r1", "r0", [&] { b.ins("addi r2, r0, 1"); });  // taken
  b.if_ne("r0", "r0", [&] { b.ins("addi r3, r0, 1"); });  // not taken
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 1);
  EXPECT_EQ(interp.reg(3), 0);
}

TEST(AsmBuilder, IfEqElseBothArms) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.if_eq_else(
      "r0", "r0", [&] { b.ins("addi r2, r0, 10"); },
      [&] { b.ins("addi r2, r0, 20"); });
  b.ins("addi r1, r0, 1");
  b.if_eq_else(
      "r1", "r0", [&] { b.ins("addi r3, r0, 10"); },
      [&] { b.ins("addi r3, r0, 20"); });
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 10) << "equal -> then arm";
  EXPECT_EQ(interp.reg(3), 20) << "unequal -> else arm";
}

TEST(AsmBuilder, RarePathFiresOnMaskedZero) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.ins("addi r2, r0, 0");
  // Counter counts 8..1; r7 & 3 == 0 for 8 and 4 -> exactly 2 hits.
  b.counted_loop("r7", 8, [&] {
    b.rare_path("r7", "r4", 2, [&] { b.ins("addi r2, r2, 1"); });
  });
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 2);
}

TEST(AsmBuilder, ColdRegionNeverExecutes) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.cold_region([&] { b.ins("addi r2, r0, 99"); });
  b.ins("addi r3, r0, 1");
  b.ins("halt");
  auto interp = run(b);
  EXPECT_EQ(interp.reg(2), 0) << "cold body must not run";
  EXPECT_EQ(interp.reg(3), 1) << "execution resumes after the region";
}

TEST(AsmBuilder, ColdRegionOccupiesImage) {
  AsmBuilder a;
  a.entry("main");
  a.func("main");
  a.ins("halt");
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.cold_region([&] { b.compute_run(20); });
  b.ins("halt");
  const auto pa = isa::assemble(a.source());
  const auto pb = isa::assemble(b.source());
  EXPECT_GT(pb.word_count(), pa.word_count() + 20);
}

TEST(AsmBuilder, ComputeRunEmitsExactCount) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.compute_run(13);
  b.ins("halt");
  const auto p = isa::assemble(b.source());
  EXPECT_EQ(p.word_count(), 14u);  // 13 + halt
}

TEST(AsmBuilder, ComputeRunPhaseShifts) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.ins("addi r10, r0, 1024");
  b.compute_run(8);
  b.compute_run(8);
  b.ins("halt");
  const auto p = isa::assemble(b.source());
  // The two runs start at different phases only if the phase persists;
  // with n=8 (a full cycle) both runs are identical -- check the builder
  // at least assembles and executes safely.
  isa::Interpreter interp(p);
  EXPECT_EQ(interp.run().stop, isa::StopReason::kHalted);
}

TEST(AsmBuilder, SourceAccumulates) {
  AsmBuilder b;
  b.entry("main");
  b.func("main");
  b.label("spot");
  b.ins("jmp spot");
  const std::string src = b.source();
  EXPECT_NE(src.find(".entry main"), std::string::npos);
  EXPECT_NE(src.find("spot:"), std::string::npos);
  EXPECT_NE(src.find("jmp spot"), std::string::npos);
}

}  // namespace
}  // namespace apcc::workloads
