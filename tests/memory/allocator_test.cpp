// Free-list allocator tests: placement, alignment, coalescing,
// fragmentation metrics, and a randomized invariant property.
#include <gtest/gtest.h>

#include <map>

#include "memory/allocator.hpp"
#include "support/rng.hpp"

namespace apcc::memory {
namespace {

TEST(Allocator, FirstAllocationAtZero) {
  FreeListAllocator a(1024);
  EXPECT_EQ(a.allocate(100).value(), 0u);
}

TEST(Allocator, SizesAlignedToFour) {
  FreeListAllocator a(1024);
  (void)a.allocate(5);
  EXPECT_EQ(a.used_bytes(), 8u);
  EXPECT_EQ(a.allocation_size(0), 8u);
}

TEST(Allocator, SequentialPlacement) {
  FreeListAllocator a(1024);
  EXPECT_EQ(a.allocate(16).value(), 0u);
  EXPECT_EQ(a.allocate(16).value(), 16u);
  EXPECT_EQ(a.allocate(16).value(), 32u);
}

TEST(Allocator, ExhaustionReturnsNullopt) {
  FreeListAllocator a(64);
  EXPECT_TRUE(a.allocate(64).has_value());
  EXPECT_FALSE(a.allocate(4).has_value());
  EXPECT_EQ(a.stats().failed_allocations, 1u);
}

TEST(Allocator, ReleaseMakesRoom) {
  FreeListAllocator a(64);
  const auto addr = a.allocate(64).value();
  a.release(addr);
  EXPECT_TRUE(a.allocate(64).has_value());
}

TEST(Allocator, ReleaseUnknownThrows) {
  FreeListAllocator a(64);
  EXPECT_THROW(a.release(12), apcc::CheckError);
}

TEST(Allocator, ZeroSizeRejected) {
  FreeListAllocator a(64);
  EXPECT_THROW((void)a.allocate(0), apcc::CheckError);
}

TEST(Allocator, CoalescingWithNextAndPrevious) {
  FreeListAllocator a(96);
  const auto x = a.allocate(32).value();
  const auto y = a.allocate(32).value();
  const auto z = a.allocate(32).value();
  a.release(x);
  a.release(z);
  a.release(y);  // merges with both neighbours
  a.validate();
  // One fully coalesced free run: a full-size allocation must succeed.
  EXPECT_TRUE(a.allocate(96).has_value());
}

TEST(Allocator, FirstFitChoosesLowestAddress) {
  FreeListAllocator a(256, FitPolicy::kFirstFit);
  const auto x = a.allocate(64).value();
  (void)a.allocate(32);
  const auto z = a.allocate(64).value();
  (void)a.allocate(32);
  a.release(x);
  a.release(z);  // two holes: 64 at low address, 64 higher up
  EXPECT_EQ(a.allocate(16).value(), x);
}

TEST(Allocator, BestFitChoosesTightestHole) {
  FreeListAllocator a(256, FitPolicy::kBestFit);
  const auto x = a.allocate(64).value();
  (void)a.allocate(16);
  const auto z = a.allocate(32).value();
  (void)a.allocate(16);
  a.release(x);  // 64-byte hole at low address
  a.release(z);  // 32-byte hole higher up
  // Best fit for 32 bytes is the 32-byte hole even though it is higher.
  EXPECT_EQ(a.allocate(32).value(), z);
}

TEST(Allocator, FragmentationMetric) {
  FreeListAllocator a(128);
  const auto x = a.allocate(32).value();
  (void)a.allocate(32);
  const auto z = a.allocate(32).value();
  (void)a.allocate(32);
  a.release(x);
  a.release(z);
  const auto s = a.stats();
  EXPECT_EQ(s.free, 64u);
  EXPECT_EQ(s.largest_free_run, 32u);
  EXPECT_NEAR(s.external_fragmentation(), 0.5, 1e-9);
}

TEST(Allocator, NoFreeSpaceMeansZeroFragmentation) {
  FreeListAllocator a(64);
  (void)a.allocate(64);
  EXPECT_DOUBLE_EQ(a.stats().external_fragmentation(), 0.0);
}

TEST(Allocator, StatsTrackCounts) {
  FreeListAllocator a(1024);
  const auto x = a.allocate(10).value();
  (void)a.allocate(20);
  a.release(x);
  const auto s = a.stats();
  EXPECT_EQ(s.total_allocations, 2u);
  EXPECT_EQ(s.live_allocations, 1u);
  EXPECT_EQ(s.capacity, 1024u);
}

TEST(Allocator, FragmentationBlocksLargeAllocation) {
  FreeListAllocator a(128);
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 8; ++i) {
    addrs.push_back(a.allocate(16).value());
  }
  // Free every other allocation: 64 free bytes but max run 16.
  for (std::size_t i = 0; i < addrs.size(); i += 2) {
    a.release(addrs[i]);
  }
  EXPECT_FALSE(a.allocate(32).has_value())
      << "external fragmentation must prevent a 32-byte allocation";
  EXPECT_TRUE(a.allocate(16).has_value());
}

// Property: random alloc/free interleavings preserve all invariants.
TEST(Allocator, RandomOperationInvariantProperty) {
  apcc::Rng rng(4242);
  for (const FitPolicy policy : {FitPolicy::kFirstFit, FitPolicy::kBestFit}) {
    FreeListAllocator a(4096, policy);
    std::map<std::uint64_t, std::uint64_t> live;  // addr -> requested size
    for (int op = 0; op < 2000; ++op) {
      if (live.empty() || rng.next_bool(0.6)) {
        const std::uint64_t size = 1 + rng.next_below(256);
        if (const auto addr = a.allocate(size)) {
          // New allocation must not overlap any live one.
          const std::uint64_t aligned = (size + 3) / 4 * 4;
          for (const auto& [la, ls] : live) {
            const std::uint64_t lal = (ls + 3) / 4 * 4;
            EXPECT_TRUE(*addr + aligned <= la || la + lal <= *addr)
                << "overlap at " << *addr;
          }
          live[*addr] = size;
        }
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.next_below(live.size())));
        a.release(it->first);
        live.erase(it);
      }
      if (op % 100 == 0) a.validate();
    }
    a.validate();
    // Releasing everything must coalesce back to a single run.
    for (const auto& [addr, size] : live) a.release(addr);
    a.validate();
    const auto s = a.stats();
    EXPECT_EQ(s.used, 0u);
    EXPECT_EQ(s.largest_free_run, 4096u);
  }
}

}  // namespace
}  // namespace apcc::memory
