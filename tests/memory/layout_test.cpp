// MemoryLayout tests: slot layout, occupancy accounting, and the
// peak / time-average series.
#include <gtest/gtest.h>

#include "memory/layout.hpp"

namespace apcc::memory {
namespace {

std::vector<CompressedSlot> three_slots() {
  // (compressed, original): 10->40, 20->60, 30->80.
  return layout_slots({{10, 40}, {20, 60}, {30, 80}});
}

TEST(LayoutSlots, AddressesPackedAndAligned) {
  const auto slots = three_slots();
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].address, 0u);
  EXPECT_EQ(slots[1].address, 12u);  // 10 aligned to 12
  EXPECT_EQ(slots[2].address, 32u);  // 12 + 20
  EXPECT_EQ(slots[2].original_size, 80u);
}

TEST(Layout, CompressedAreaIncludesIndex) {
  const MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  // Slot bytes: 12 + 20 + 32 = 64, plus 3 * 4 index bytes.
  EXPECT_EQ(layout.compressed_area_bytes(), 64u + 12u);
  EXPECT_EQ(layout.index_bytes(), 12u);
  EXPECT_EQ(layout.original_image_bytes(), 180u);
}

TEST(Layout, OccupancyTracksPlacements) {
  MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  const std::uint64_t base = layout.occupancy_bytes();
  const auto a = layout.place_decompressed(0, 10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(layout.decompressed_bytes(), 40u);
  EXPECT_EQ(layout.occupancy_bytes(), base + 40);
  layout.drop_decompressed(*a, 20);
  EXPECT_EQ(layout.occupancy_bytes(), base);
}

TEST(Layout, PeakIsMonotone) {
  MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  const auto a = layout.place_decompressed(2, 5).value();  // 80 bytes
  const std::uint64_t peak_with_block = layout.peak_occupancy_bytes();
  layout.drop_decompressed(a, 10);
  EXPECT_EQ(layout.peak_occupancy_bytes(), peak_with_block)
      << "peak must not decrease on drop";
  EXPECT_GT(peak_with_block, layout.occupancy_bytes());
}

TEST(Layout, BudgetLimitsPlacements) {
  // Budget below the largest block: placement of block 2 must fail.
  MemoryLayout layout(three_slots(), 64);
  EXPECT_TRUE(layout.place_decompressed(0, 1).has_value());   // 40 bytes
  EXPECT_FALSE(layout.place_decompressed(2, 2).has_value());  // 80 > 24 left
}

TEST(Layout, AverageOccupancyTimeWeighted) {
  MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  const std::uint64_t base = layout.occupancy_bytes();
  const auto a = layout.place_decompressed(0, 0).value();  // +40 at t=0
  layout.drop_decompressed(a, 50);                         // back to base
  // [0,50): base+40, [50,100): base -> average = base + 20.
  EXPECT_NEAR(layout.average_occupancy_bytes(100),
              static_cast<double>(base) + 20.0, 1e-6);
}

TEST(Layout, SlotAccessorRangeChecked) {
  const MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  EXPECT_THROW((void)layout.slot(3), apcc::CheckError);
  EXPECT_EQ(layout.slot(1).compressed_size, 20u);
}

TEST(Layout, UnboundedFitsWholeImage) {
  MemoryLayout layout(three_slots(), MemoryLayout::kUnbounded);
  std::vector<std::uint64_t> addrs;
  for (std::size_t b = 0; b < 3; ++b) {
    const auto a = layout.place_decompressed(b, b);
    ASSERT_TRUE(a.has_value()) << "unbounded layout must fit every block";
    addrs.push_back(*a);
  }
  EXPECT_EQ(layout.decompressed_bytes(), 180u);
}

}  // namespace
}  // namespace apcc::memory
