// Core CFG data structure tests: construction, edges, probabilities,
// validation, DOT export.
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "cfg/dot.hpp"
#include "support/assert.hpp"

namespace apcc::cfg {
namespace {

Cfg diamond() {
  // 0 -> {1, 2} -> 3
  Cfg g;
  g.add_block(0, 4, "A");
  g.add_block(4, 4, "B");
  g.add_block(8, 4, "C");
  g.add_block(12, 4, "D");
  g.add_edge(0, 1, EdgeKind::kBranchTaken);
  g.add_edge(0, 2, EdgeKind::kFallThrough);
  g.add_edge(1, 3, EdgeKind::kJump);
  g.add_edge(2, 3, EdgeKind::kFallThrough);
  return g;
}

TEST(Cfg, BlockAndEdgeAccounting) {
  const Cfg g = diamond();
  EXPECT_EQ(g.block_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.entry(), 0u);
  EXPECT_EQ(g.block(1).note, "B");
  EXPECT_EQ(g.block(2).size_bytes(), 16u);
}

TEST(Cfg, SuccessorsAndPredecessors) {
  const Cfg g = diamond();
  EXPECT_EQ(g.successor_ids(0), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(g.predecessor_ids(3), (std::vector<BlockId>{1, 2}));
  EXPECT_TRUE(g.successor_ids(3).empty());
  EXPECT_TRUE(g.predecessor_ids(0).empty());
}

TEST(Cfg, FindEdge) {
  const Cfg g = diamond();
  EXPECT_NE(g.find_edge(0, 1), Cfg::kNoEdge);
  EXPECT_EQ(g.find_edge(1, 0), Cfg::kNoEdge);
  EXPECT_EQ(g.find_edge(3, 3), Cfg::kNoEdge);
}

TEST(Cfg, DuplicateEdgeRejected) {
  Cfg g = diamond();
  EXPECT_THROW(g.add_edge(0, 1, EdgeKind::kBranchTaken), CheckError);
  // Same endpoints with a different kind is allowed (call + fallthrough).
  EXPECT_NO_THROW(g.add_edge(0, 1, EdgeKind::kJump));
}

TEST(Cfg, EdgeEndpointRangeChecked) {
  Cfg g = diamond();
  EXPECT_THROW(g.add_edge(0, 42, EdgeKind::kJump), CheckError);
  EXPECT_THROW(g.add_edge(42, 0, EdgeKind::kJump), CheckError);
}

TEST(Cfg, NormalizeUniformWhenUnset) {
  Cfg g = diamond();
  g.normalize_probabilities();
  const auto& b0 = g.block(0);
  double total = 0;
  for (const EdgeId e : b0.out_edges) {
    EXPECT_DOUBLE_EQ(g.edge(e).probability, 0.5);
    total += g.edge(e).probability;
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Cfg, NormalizePreservesSetRatios) {
  Cfg g = diamond();
  g.edge(g.find_edge(0, 1)).probability = 3.0;
  g.edge(g.find_edge(0, 2)).probability = 1.0;
  g.normalize_probabilities();
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(0, 1)).probability, 0.75);
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(0, 2)).probability, 0.25);
}

TEST(Cfg, NormalizeMixedSetAndUnset) {
  Cfg g = diamond();
  g.edge(g.find_edge(0, 1)).probability = 0.25;
  g.normalize_probabilities();
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(0, 1)).probability, 0.25);
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(0, 2)).probability, 0.75);
}

TEST(Cfg, TotalCodeBytes) {
  const Cfg g = diamond();
  EXPECT_EQ(g.total_code_bytes(), 64u);
}

TEST(Cfg, ValidatePassesOnWellFormedGraph) {
  Cfg g = diamond();
  g.normalize_probabilities();
  EXPECT_NO_THROW(g.validate());
}

TEST(Cfg, SetEntryChecked) {
  Cfg g = diamond();
  EXPECT_THROW(g.set_entry(99), CheckError);
  g.set_entry(2);
  EXPECT_EQ(g.entry(), 2u);
}

TEST(Cfg, OutOfRangeAccessThrows) {
  const Cfg g = diamond();
  EXPECT_THROW((void)g.block(99), CheckError);
  EXPECT_THROW((void)g.edge(99), CheckError);
}

TEST(Dot, ContainsNodesAndEdges) {
  Cfg g = diamond();
  g.normalize_probabilities();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("A"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  Cfg g;
  g.add_block(0, 1, "say \"hi\"");
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(EdgeKindNames, AllDistinct) {
  EXPECT_STREQ(edge_kind_name(EdgeKind::kFallThrough), "fallthrough");
  EXPECT_STREQ(edge_kind_name(EdgeKind::kBranchTaken), "taken");
  EXPECT_STREQ(edge_kind_name(EdgeKind::kJump), "jump");
  EXPECT_STREQ(edge_kind_name(EdgeKind::kCall), "call");
  EXPECT_STREQ(edge_kind_name(EdgeKind::kReturn), "return");
}

}  // namespace
}  // namespace apcc::cfg
