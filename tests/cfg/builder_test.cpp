// CFG builder tests: leader identification, edge kinds, interprocedural
// call/return wiring, and the word->block map.
#include <gtest/gtest.h>

#include "cfg/builder.hpp"
#include "isa/assembler.hpp"

namespace apcc::cfg {
namespace {

BuildResult build(const std::string& src) {
  return build_cfg(isa::assemble(src));
}

TEST(Builder, StraightLineIsOneBlock) {
  const auto r = build(".func main\n  addi r1, r0, 1\n  nop\n  halt\n");
  EXPECT_EQ(r.cfg.block_count(), 1u);
  EXPECT_EQ(r.cfg.edge_count(), 0u);
  EXPECT_TRUE(r.cfg.block(0).is_exit);
}

TEST(Builder, BranchSplitsBlocks) {
  const auto r = build(
      ".func main\n"
      "  beq r1, r2, over\n"
      "  addi r1, r1, 1\n"
      "over:\n"
      "  halt\n");
  // Blocks: [beq], [addi], [halt].
  ASSERT_EQ(r.cfg.block_count(), 3u);
  const BlockId b0 = r.word_to_block[0];
  const BlockId b1 = r.word_to_block[1];
  const BlockId b2 = r.word_to_block[2];
  EXPECT_NE(r.cfg.find_edge(b0, b2), Cfg::kNoEdge) << "taken edge";
  EXPECT_NE(r.cfg.find_edge(b0, b1), Cfg::kNoEdge) << "fallthrough edge";
  EXPECT_NE(r.cfg.find_edge(b1, b2), Cfg::kNoEdge) << "sequential edge";
}

TEST(Builder, EdgeKindsAreLabelled) {
  const auto r = build(
      ".func main\n"
      "  beq r1, r2, over\n"
      "  jmp over\n"
      "over:\n"
      "  halt\n");
  const BlockId b0 = r.word_to_block[0];
  const BlockId b1 = r.word_to_block[1];
  const BlockId b2 = r.word_to_block[2];
  EXPECT_EQ(r.cfg.edge(r.cfg.find_edge(b0, b2)).kind, EdgeKind::kBranchTaken);
  EXPECT_EQ(r.cfg.edge(r.cfg.find_edge(b0, b1)).kind, EdgeKind::kFallThrough);
  EXPECT_EQ(r.cfg.edge(r.cfg.find_edge(b1, b2)).kind, EdgeKind::kJump);
}

TEST(Builder, LoopBackEdge) {
  const auto r = build(
      ".func main\n"
      "  addi r1, r0, 5\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  const BlockId header = r.word_to_block[1];
  const BlockId latch = r.word_to_block[2];
  EXPECT_EQ(header, latch) << "loop body is a single block";
  EXPECT_NE(r.cfg.find_edge(latch, header), Cfg::kNoEdge);
}

TEST(Builder, CallAndReturnEdges) {
  const auto r = build(
      ".entry main\n"
      ".func helper\n"
      "  add r2, r1, r1\n"
      "  ret\n"
      ".func main\n"
      "  addi r1, r0, 1\n"
      "  jal helper\n"
      "  halt\n");
  const BlockId helper_entry = r.word_to_block[0];
  const BlockId call_block = r.word_to_block[2];  // addi+jal
  const BlockId resume = r.word_to_block[4];      // halt
  const EdgeId call_edge = r.cfg.find_edge(call_block, helper_entry);
  ASSERT_NE(call_edge, Cfg::kNoEdge);
  EXPECT_EQ(r.cfg.edge(call_edge).kind, EdgeKind::kCall);
  const EdgeId ret_edge = r.cfg.find_edge(helper_entry, resume);
  ASSERT_NE(ret_edge, Cfg::kNoEdge);
  EXPECT_EQ(r.cfg.edge(ret_edge).kind, EdgeKind::kReturn);
}

TEST(Builder, MultipleCallSitesAllGetReturnEdges) {
  const auto r = build(
      ".entry main\n"
      ".func f\n"
      "  ret\n"
      ".func main\n"
      "  jal f\n"
      "  jal f\n"
      "  halt\n");
  const BlockId f_block = r.word_to_block[0];
  const BlockId resume1 = r.word_to_block[2];
  const BlockId resume2 = r.word_to_block[3];
  EXPECT_NE(r.cfg.find_edge(f_block, resume1), Cfg::kNoEdge);
  EXPECT_NE(r.cfg.find_edge(f_block, resume2), Cfg::kNoEdge);
}

TEST(Builder, EntryFunctionReturnIsExit) {
  const auto r = build(".func main\n  ret\n");
  EXPECT_TRUE(r.cfg.block(r.word_to_block[0]).is_exit);
}

TEST(Builder, IndirectJumpFlagsBlock) {
  const auto r = build(".func main\n  addi r1, r0, 0\n  jr r1\n  halt\n");
  const BlockId jr_block = r.word_to_block[1];
  EXPECT_TRUE(r.cfg.block(jr_block).has_indirect_successors);
}

TEST(Builder, EntryBlockMatchesEntryWord) {
  const auto r = build(
      ".entry main\n"
      ".func f\n  ret\n"
      ".func main\n  halt\n");
  EXPECT_EQ(r.cfg.entry(), r.word_to_block[1]);
}

TEST(Builder, WordToBlockCoversImage) {
  const auto r = build(
      ".func main\n"
      "  beq r1, r2, x\n"
      "  nop\n"
      "x:\n"
      "  halt\n");
  for (const BlockId b : r.word_to_block) {
    EXPECT_NE(b, kInvalidBlock);
  }
  for (const auto& block : r.cfg.blocks()) {
    for (std::uint32_t w = block.first_word;
         w < block.first_word + block.word_count; ++w) {
      EXPECT_EQ(r.word_to_block[w], block.id);
    }
  }
}

TEST(Builder, FunctionEntryBlockCarriesName) {
  const auto r = build(
      ".entry main\n"
      ".func helper\n  ret\n"
      ".func main\n  halt\n");
  EXPECT_EQ(r.cfg.block(r.word_to_block[0]).note, "helper");
  EXPECT_EQ(r.cfg.block(r.word_to_block[1]).note, "main");
}

TEST(Builder, ProbabilitiesNormalised) {
  const auto r = build(
      ".func main\n"
      "  beq r1, r2, x\n"
      "  nop\n"
      "x:\n"
      "  halt\n");
  for (const auto& block : r.cfg.blocks()) {
    if (block.out_edges.empty()) continue;
    double total = 0;
    for (const EdgeId e : block.out_edges) {
      total += r.cfg.edge(e).probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Builder, EmptyProgramRejected) {
  EXPECT_THROW((void)build(""), apcc::CheckError);
}

TEST(Builder, HaltMidFunctionMarksExitBlock) {
  const auto r = build(
      ".func main\n"
      "  beq r1, r2, done\n"
      "  nop\n"
      "done:\n"
      "  halt\n");
  const BlockId halt_block = r.word_to_block[2];
  EXPECT_TRUE(r.cfg.block(halt_block).is_exit);
  EXPECT_TRUE(r.cfg.block(halt_block).out_edges.empty());
}

}  // namespace
}  // namespace apcc::cfg
