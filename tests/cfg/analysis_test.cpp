// CFG analysis tests: RPO, dominators, natural loops, the k-edge frontier
// (the paper's core primitive), edge distances and reach scores.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/analysis.hpp"
#include "cfg/paper_graphs.hpp"

namespace apcc::cfg {
namespace {

/// 0 -> 1 -> 2 -> 3 with back edge 2 -> 1 and side exit 1 -> 4.
Cfg loop_graph() {
  Cfg g;
  for (int i = 0; i < 5; ++i) {
    g.add_block(static_cast<std::uint32_t>(i * 4), 4);
  }
  g.add_edge(0, 1, EdgeKind::kFallThrough);
  g.add_edge(1, 2, EdgeKind::kFallThrough);
  g.add_edge(2, 1, EdgeKind::kBranchTaken);  // back edge
  g.add_edge(2, 3, EdgeKind::kFallThrough);
  g.add_edge(1, 4, EdgeKind::kBranchTaken);
  g.normalize_probabilities();
  return g;
}

TEST(Rpo, EntryFirstEveryBlockOnce) {
  const Cfg g = loop_graph();
  const auto order = reverse_post_order(g);
  ASSERT_EQ(order.size(), g.block_count());
  EXPECT_EQ(order.front(), g.entry());
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (BlockId b = 0; b < g.block_count(); ++b) {
    EXPECT_EQ(sorted[b], b);
  }
}

TEST(Rpo, PredecessorBeforeSuccessorInAcyclicGraph) {
  Cfg g;
  for (int i = 0; i < 4; ++i) g.add_block(static_cast<std::uint32_t>(i), 1);
  g.add_edge(0, 1, EdgeKind::kFallThrough);
  g.add_edge(0, 2, EdgeKind::kBranchTaken);
  g.add_edge(1, 3, EdgeKind::kJump);
  g.add_edge(2, 3, EdgeKind::kJump);
  const auto order = reverse_post_order(g);
  const auto pos = [&](BlockId b) {
    return std::find(order.begin(), order.end(), b) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Rpo, UnreachableBlocksAppended) {
  Cfg g;
  g.add_block(0, 1);
  g.add_block(1, 1);  // unreachable
  const auto order = reverse_post_order(g);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(Dominators, ChainAndDiamond) {
  Cfg g;
  for (int i = 0; i < 4; ++i) g.add_block(static_cast<std::uint32_t>(i), 1);
  g.add_edge(0, 1, EdgeKind::kFallThrough);
  g.add_edge(0, 2, EdgeKind::kBranchTaken);
  g.add_edge(1, 3, EdgeKind::kJump);
  g.add_edge(2, 3, EdgeKind::kJump);
  const auto idom = immediate_dominators(g);
  EXPECT_EQ(idom[0], 0u);
  EXPECT_EQ(idom[1], 0u);
  EXPECT_EQ(idom[2], 0u);
  EXPECT_EQ(idom[3], 0u) << "join dominated by the fork, not an arm";
  EXPECT_TRUE(dominates(idom, 0, 3));
  EXPECT_FALSE(dominates(idom, 1, 3));
  EXPECT_TRUE(dominates(idom, 3, 3));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const Cfg g = loop_graph();
  const auto idom = immediate_dominators(g);
  EXPECT_TRUE(dominates(idom, 1, 2));
  EXPECT_TRUE(dominates(idom, 0, 3));
  EXPECT_FALSE(dominates(idom, 2, 1));
}

TEST(Dominators, UnreachableBlockHasNoIdom) {
  Cfg g;
  g.add_block(0, 1);
  g.add_block(1, 1);
  const auto idom = immediate_dominators(g);
  EXPECT_EQ(idom[1], kInvalidBlock);
  EXPECT_FALSE(dominates(idom, 0, 1));
}

TEST(NaturalLoops, FindsSingleLoop) {
  const Cfg g = loop_graph();
  const auto loops = natural_loops(g);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1u);
  EXPECT_TRUE(loops[0].contains(1));
  EXPECT_TRUE(loops[0].contains(2));
  EXPECT_FALSE(loops[0].contains(0));
  EXPECT_FALSE(loops[0].contains(3));
}

TEST(NaturalLoops, Figure1HasTwoLoops) {
  const Cfg g = figure1_cfg();
  const auto loops = natural_loops(g);
  EXPECT_EQ(loops.size(), 2u) << "the paper says Figure 1 contains two loops";
}

TEST(LoopDepths, NestedLoops) {
  // 0 -> 1 -> 2 -> 1 (inner), 2 -> 0 (outer) ... build explicit nest:
  Cfg g;
  for (int i = 0; i < 4; ++i) g.add_block(static_cast<std::uint32_t>(i), 1);
  g.add_edge(0, 1, EdgeKind::kFallThrough);   // outer header 0
  g.add_edge(1, 2, EdgeKind::kFallThrough);   // inner header 1
  g.add_edge(2, 1, EdgeKind::kBranchTaken);   // inner back edge
  g.add_edge(2, 0, EdgeKind::kBranchTaken);   // outer back edge
  g.add_edge(2, 3, EdgeKind::kFallThrough);   // exit
  g.normalize_probabilities();
  const auto depth = loop_depths(g);
  EXPECT_EQ(depth[0], 1u);
  EXPECT_EQ(depth[1], 2u);
  EXPECT_EQ(depth[2], 2u);
  EXPECT_EQ(depth[3], 0u);
}

TEST(Frontier, DistanceOneIsSuccessors) {
  const Cfg g = loop_graph();
  EXPECT_EQ(frontier_within(g, 0, 1), (std::vector<BlockId>{1}));
  EXPECT_EQ(frontier_within(g, 1, 1), (std::vector<BlockId>{2, 4}));
}

TEST(Frontier, GrowsWithK) {
  const Cfg g = loop_graph();
  const auto f1 = frontier_within(g, 0, 1);
  const auto f2 = frontier_within(g, 0, 2);
  const auto f3 = frontier_within(g, 0, 3);
  EXPECT_TRUE(std::includes(f2.begin(), f2.end(), f1.begin(), f1.end()));
  EXPECT_TRUE(std::includes(f3.begin(), f3.end(), f2.begin(), f2.end()));
  EXPECT_EQ(f2, (std::vector<BlockId>{1, 2, 4}));
}

TEST(Frontier, KZeroIsEmpty) {
  const Cfg g = loop_graph();
  EXPECT_TRUE(frontier_within(g, 0, 0).empty());
}

TEST(Frontier, SelfReachableViaCycle) {
  const Cfg g = loop_graph();
  // 1 -> 2 -> 1: block 1 re-reaches itself within 2 edges.
  const auto f = frontier_within(g, 1, 2);
  EXPECT_TRUE(std::binary_search(f.begin(), f.end(), 1u));
}

TEST(Frontier, ExitBlockHasEmptyFrontier) {
  const Cfg g = loop_graph();
  EXPECT_TRUE(frontier_within(g, 4, 5).empty());
}

/// 0 -> 0 (self-loop), 0 -> 1 -> 2.
Cfg self_loop_graph() {
  Cfg g;
  for (int i = 0; i < 3; ++i) {
    g.add_block(static_cast<std::uint32_t>(i * 4), 4);
  }
  g.add_edge(0, 0, EdgeKind::kBranchTaken);
  g.add_edge(0, 1, EdgeKind::kFallThrough);
  g.add_edge(1, 2, EdgeKind::kFallThrough);
  g.normalize_probabilities();
  return g;
}

/// 0 -> {1, 2} -> 3 with an unreachable block 4.
Cfg diamond_graph() {
  Cfg g;
  for (int i = 0; i < 5; ++i) {
    g.add_block(static_cast<std::uint32_t>(i * 4), 4);
  }
  g.add_edge(0, 1, EdgeKind::kFallThrough);
  g.add_edge(0, 2, EdgeKind::kBranchTaken);
  g.add_edge(1, 3, EdgeKind::kJump);
  g.add_edge(2, 3, EdgeKind::kJump);
  g.normalize_probabilities();
  return g;
}

TEST(Frontier, SelfLoopGraphPinned) {
  const Cfg g = self_loop_graph();
  EXPECT_EQ(frontier_within(g, 0, 1), (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(frontier_within(g, 0, 2), (std::vector<BlockId>{0, 1, 2}));
  EXPECT_EQ(frontier_within(g, 1, 2), (std::vector<BlockId>{2}));
}

TEST(Frontier, DiamondGraphPinned) {
  const Cfg g = diamond_graph();
  EXPECT_EQ(frontier_within(g, 0, 1), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(frontier_within(g, 0, 2), (std::vector<BlockId>{1, 2, 3}));
  EXPECT_EQ(frontier_within(g, 0, 8), (std::vector<BlockId>{1, 2, 3}))
      << "unreachable block 4 never enters the frontier";
  EXPECT_TRUE(frontier_within(g, 4, 8).empty());
}

TEST(FrontierDistances, MatchFrontierAndEdgeDistance) {
  for (const Cfg& g :
       {loop_graph(), self_loop_graph(), diamond_graph(), figure2_cfg()}) {
    for (BlockId from = 0; from < g.block_count(); ++from) {
      for (const unsigned k : {0u, 1u, 2u, 3u, 8u}) {
        const auto entries = frontier_distances(g, from, k);
        std::vector<BlockId> blocks;
        for (const auto& e : entries) blocks.push_back(e.block);
        std::sort(blocks.begin(), blocks.end());
        EXPECT_EQ(blocks, frontier_within(g, from, k));
        for (const auto& e : entries) {
          EXPECT_EQ(e.distance, edge_distance(g, from, e.block).value());
          EXPECT_GE(e.distance, 1u);
          EXPECT_LE(e.distance, k);
        }
        // Sorted by (distance, id): the planner's request order.
        for (std::size_t i = 1; i < entries.size(); ++i) {
          const auto& a = entries[i - 1];
          const auto& b = entries[i];
          EXPECT_TRUE(a.distance < b.distance ||
                      (a.distance == b.distance && a.block < b.block));
        }
      }
    }
  }
}

TEST(EdgeDistance, BasicDistances) {
  const Cfg g = loop_graph();
  EXPECT_EQ(edge_distance(g, 0, 1).value(), 1u);
  EXPECT_EQ(edge_distance(g, 0, 3).value(), 3u);
  EXPECT_EQ(edge_distance(g, 3, 0), std::nullopt);
}

TEST(EdgeDistance, SelfDistanceIsShortestCycle) {
  const Cfg g = loop_graph();
  // 1 -> 2 -> 1 is the shortest cycle through 1 and 2.
  EXPECT_EQ(edge_distance(g, 1, 1).value(), 2u);
  EXPECT_EQ(edge_distance(g, 2, 2).value(), 2u);
  // No cycle returns to 0, 3 or 4.
  EXPECT_EQ(edge_distance(g, 0, 0), std::nullopt);
  EXPECT_EQ(edge_distance(g, 3, 3), std::nullopt);
  EXPECT_EQ(edge_distance(g, 4, 4), std::nullopt);
}

TEST(EdgeDistance, SelfLoopDistanceIsOne) {
  const Cfg g = self_loop_graph();
  EXPECT_EQ(edge_distance(g, 0, 0).value(), 1u);
  EXPECT_EQ(edge_distance(g, 1, 1), std::nullopt);
}

TEST(EdgeDistance, Figure2B1ToB7IsExactlyThree) {
  const Cfg g = figure2_cfg();
  // The paper: "from the end of B1 to the beginning of B7, there are at
  // most 3 edges that need to be traversed" -- and no shorter path.
  EXPECT_EQ(edge_distance(g, 1, 7).value(), 3u);
}

TEST(ReachScores, SortedAndPositive) {
  const Cfg g = loop_graph();
  const auto scores = reach_scores(g, 0, 3);
  ASSERT_FALSE(scores.empty());
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].score, scores[i].score);
  }
  for (const auto& s : scores) {
    EXPECT_GT(s.score, 0.0);
    EXPECT_GE(s.min_distance, 1u);
    EXPECT_LE(s.min_distance, 3u);
  }
}

TEST(ReachScores, FollowsProbabilityMass) {
  // 0 -> 1 (p=0.9), 0 -> 2 (p=0.1).
  Cfg g;
  for (int i = 0; i < 3; ++i) g.add_block(static_cast<std::uint32_t>(i), 1);
  g.add_edge(0, 1, EdgeKind::kBranchTaken, 0.9);
  g.add_edge(0, 2, EdgeKind::kFallThrough, 0.1);
  g.normalize_probabilities();
  const auto scores = reach_scores(g, 0, 1);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].block, 1u);
  EXPECT_NEAR(scores[0].score, 0.9, 1e-9);
  EXPECT_EQ(scores[1].block, 2u);
}

TEST(ReachScores, KZeroEmpty) {
  const Cfg g = loop_graph();
  EXPECT_TRUE(reach_scores(g, 0, 0).empty());
}

}  // namespace
}  // namespace apcc::cfg
