// Structural checks that the reconstructed paper figures satisfy every
// property the DATE'05 text asserts about them.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/analysis.hpp"
#include "cfg/paper_graphs.hpp"

namespace apcc::cfg {
namespace {

TEST(Figure1, ShapeAndEntry) {
  const Cfg g = figure1_cfg();
  EXPECT_EQ(g.block_count(), 6u);
  EXPECT_EQ(g.entry(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Figure1, BranchArmsAndJoin) {
  const Cfg g = figure1_cfg();
  EXPECT_NE(g.find_edge(0, 1), Cfg::kNoEdge);
  EXPECT_NE(g.find_edge(0, 2), Cfg::kNoEdge);
  EXPECT_NE(g.find_edge(1, 3), Cfg::kNoEdge) << "edge a";
  EXPECT_NE(g.find_edge(3, 4), Cfg::kNoEdge) << "edge b";
}

TEST(Figure1, ContainsTwoLoops) {
  const auto loops = natural_loops(figure1_cfg());
  EXPECT_EQ(loops.size(), 2u);
}

TEST(Figure1, TraceFollowsLeftBranch) {
  const auto trace = figure1_trace();
  EXPECT_EQ(trace, (BlockTrace{0, 1, 3, 4}));
  EXPECT_NO_THROW(validate_trace(figure1_cfg(), trace));
}

TEST(Figure2, ShapeAndExit) {
  const Cfg g = figure2_cfg();
  EXPECT_EQ(g.block_count(), 10u);
  EXPECT_TRUE(g.block(9).is_exit);
  EXPECT_NO_THROW(g.validate());
}

TEST(Figure2, B7IsExactlyThreeEdgesFromB1) {
  const Cfg g = figure2_cfg();
  // k=3 pre-decompression triggers at the end of B1 for B7, so B7 must be
  // within 3 edges but NOT within 2.
  EXPECT_EQ(edge_distance(g, 1, 7).value(), 3u);
  const auto f2 = frontier_within(g, 1, 2);
  EXPECT_FALSE(std::binary_search(f2.begin(), f2.end(), BlockId{7}));
  const auto f3 = frontier_within(g, 1, 3);
  EXPECT_TRUE(std::binary_search(f3.begin(), f3.end(), BlockId{7}));
}

TEST(Figure2, PreAllExampleBlocksWithinTwoOfB0) {
  const Cfg g = figure2_cfg();
  // §4: with k=2 and B4, B5, B8, B9 compressed, pre-decompress-all
  // decompresses exactly those four -- so all must lie within 2 edges of
  // the exit of B0.
  const auto f2 = frontier_within(g, 0, 2);
  for (const BlockId b : {4u, 5u, 8u, 9u}) {
    EXPECT_TRUE(std::binary_search(f2.begin(), f2.end(), b))
        << "B" << b << " must be within 2 edges of B0";
  }
}

TEST(Figure2, Figure4TraceIsAPath) {
  EXPECT_NO_THROW(validate_trace(figure2_cfg(), figure4_trace()));
  EXPECT_EQ(figure4_trace().front(), 0u);
  EXPECT_EQ(figure4_trace().back(), 9u);
}

TEST(Figure5, ShapeAndBackEdge) {
  const Cfg g = figure5_cfg();
  EXPECT_EQ(g.block_count(), 4u);
  EXPECT_NE(g.find_edge(0, 1), Cfg::kNoEdge);
  EXPECT_NE(g.find_edge(0, 2), Cfg::kNoEdge);
  EXPECT_NE(g.find_edge(1, 0), Cfg::kNoEdge) << "loop back edge";
  EXPECT_NE(g.find_edge(1, 3), Cfg::kNoEdge);
  EXPECT_NE(g.find_edge(2, 3), Cfg::kNoEdge);
  EXPECT_TRUE(g.block(3).is_exit);
}

TEST(Figure5, AccessPatternMatchesPaper) {
  EXPECT_EQ(figure5_trace(), (BlockTrace{0, 1, 0, 1, 3}));
  EXPECT_NO_THROW(validate_trace(figure5_cfg(), figure5_trace()));
}

TEST(PaperGraphs, BlockNotesAreBn) {
  const Cfg g = figure2_cfg();
  EXPECT_EQ(g.block(0).note, "B0");
  EXPECT_EQ(g.block(9).note, "B9");
}

TEST(PaperGraphs, SizesVaryWhenRequested) {
  PaperGraphOptions opts;
  opts.vary_sizes = true;
  const Cfg g = figure1_cfg(opts);
  EXPECT_NE(g.block(0).word_count, g.block(5).word_count);

  opts.vary_sizes = false;
  const Cfg uniform = figure1_cfg(opts);
  EXPECT_EQ(uniform.block(0).word_count, uniform.block(5).word_count);
}

TEST(PaperGraphs, BlocksLaidOutContiguously) {
  const Cfg g = figure5_cfg();
  std::uint32_t cursor = 0;
  for (const auto& b : g.blocks()) {
    EXPECT_EQ(b.first_word, cursor);
    cursor += b.word_count;
  }
}

TEST(PaperGraphs, ProbabilitiesNormalised) {
  for (const Cfg& g : {figure1_cfg(), figure2_cfg(), figure5_cfg()}) {
    for (const auto& b : g.blocks()) {
      if (b.out_edges.empty()) continue;
      double total = 0;
      for (const EdgeId e : b.out_edges) total += g.edge(e).probability;
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace apcc::cfg
