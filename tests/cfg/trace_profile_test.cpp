// BlockTraceBuilder and EdgeProfile tests.
#include <gtest/gtest.h>

#include "cfg/builder.hpp"
#include "cfg/paper_graphs.hpp"
#include "cfg/profile.hpp"
#include "cfg/trace.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

namespace apcc::cfg {
namespace {

TEST(BlockTraceBuilder, LoopProducesRepeatedEntries) {
  const auto p = isa::assemble(
      ".func main\n"
      "  addi r1, r0, 3\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  const auto built = build_cfg(p);
  isa::Interpreter interp(p);
  BlockTraceBuilder tracer(built.cfg, built.word_to_block);
  interp.set_trace_hook([&](std::uint32_t pc) { tracer.on_pc(pc); });
  (void)interp.run();
  const BlockTrace trace = tracer.trace();
  // Entry block once, loop block three times, halt block once.
  const BlockId loop_block = built.word_to_block[1];
  const auto loop_entries = static_cast<std::size_t>(
      std::count(trace.begin(), trace.end(), loop_block));
  EXPECT_EQ(loop_entries, 3u);
  EXPECT_NO_THROW(validate_trace(built.cfg, trace));
}

TEST(BlockTraceBuilder, SelfLoopReentryCounted) {
  // A single-block loop: re-entering the block's first word counts as a
  // new entry even though the block id does not change.
  const auto p = isa::assemble(
      ".func main\n"
      "  addi r1, r0, 4\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  const auto built = build_cfg(p);
  isa::Interpreter interp(p);
  BlockTraceBuilder tracer(built.cfg, built.word_to_block);
  interp.set_trace_hook([&](std::uint32_t pc) { tracer.on_pc(pc); });
  (void)interp.run();
  const BlockId loop_block = built.word_to_block[1];
  EXPECT_EQ(std::count(tracer.trace().begin(), tracer.trace().end(),
                       loop_block),
            4);
}

TEST(ValidateTrace, RejectsNonEdgeTransition) {
  const Cfg g = figure5_cfg();
  BlockTrace bad = {0, 3};  // no B0 -> B3 edge in Figure 5
  EXPECT_THROW(validate_trace(g, bad), apcc::CheckError);
}

TEST(ValidateTrace, AcceptsPaperTraces) {
  EXPECT_NO_THROW(validate_trace(figure1_cfg(), figure1_trace()));
  EXPECT_NO_THROW(validate_trace(figure2_cfg(), figure4_trace()));
  EXPECT_NO_THROW(validate_trace(figure5_cfg(), figure5_trace()));
}

TEST(EdgeProfile, CountsTransitionsAndBlocks) {
  const Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.add_trace(figure5_trace());  // B0,B1,B0,B1,B3
  EXPECT_EQ(profile.total_entries(), 5u);
  EXPECT_EQ(profile.block_count(0), 2u);
  EXPECT_EQ(profile.block_count(1), 2u);
  EXPECT_EQ(profile.block_count(2), 0u);
  EXPECT_EQ(profile.block_count(3), 1u);
  EXPECT_EQ(profile.edge_count(g.find_edge(0, 1)), 2u);
  EXPECT_EQ(profile.edge_count(g.find_edge(1, 0)), 1u);
  EXPECT_EQ(profile.edge_count(g.find_edge(1, 3)), 1u);
  EXPECT_EQ(profile.edge_count(g.find_edge(0, 2)), 0u);
  EXPECT_EQ(profile.unmatched_transitions(), 0u);
}

TEST(EdgeProfile, ApplyToSetsFrequencies) {
  Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.add_trace(figure5_trace());
  profile.apply_to(g);
  // B0 went to B1 both times: p(B0->B1)=1, p(B0->B2)=0.
  EXPECT_NEAR(g.edge(g.find_edge(0, 1)).probability, 1.0, 1e-9);
  EXPECT_NEAR(g.edge(g.find_edge(0, 2)).probability, 0.0, 1e-9);
  // B1 split 50/50 between back edge and B3.
  EXPECT_NEAR(g.edge(g.find_edge(1, 0)).probability, 0.5, 1e-9);
  EXPECT_NEAR(g.edge(g.find_edge(1, 3)).probability, 0.5, 1e-9);
}

TEST(EdgeProfile, UnobservedBlocksKeepPriors) {
  Cfg g = figure5_cfg();
  const double before = g.edge(g.find_edge(2, 3)).probability;
  EdgeProfile profile(g);
  profile.add_trace(figure5_trace());  // never visits B2
  profile.apply_to(g);
  EXPECT_NEAR(g.edge(g.find_edge(2, 3)).probability, before, 1e-9);
}

TEST(EdgeProfile, HottestOutEdge) {
  const Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.add_trace(figure5_trace());
  EXPECT_EQ(profile.hottest_out_edge(0), g.find_edge(0, 1));
  EXPECT_EQ(profile.hottest_out_edge(2), Cfg::kNoEdge) << "unobserved block";
}

TEST(EdgeProfile, HotBlockCoverage) {
  const Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.add_trace(figure5_trace());
  // Top-2 blocks (B0, B1) cover 4 of 5 entries.
  EXPECT_NEAR(profile.hot_block_coverage(2), 0.8, 1e-9);
  EXPECT_NEAR(profile.hot_block_coverage(10), 1.0, 1e-9);
}

TEST(EdgeProfile, UnmatchedTransitionCounted) {
  const Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.record_transition(0, 3);  // no such edge
  EXPECT_EQ(profile.unmatched_transitions(), 1u);
}

TEST(EdgeProfile, MultipleTracesAccumulate) {
  const Cfg g = figure5_cfg();
  EdgeProfile profile(g);
  profile.add_trace({0, 1, 3});
  profile.add_trace({0, 2, 3});
  EXPECT_EQ(profile.total_entries(), 6u);
  EXPECT_EQ(profile.edge_count(g.find_edge(0, 1)), 1u);
  EXPECT_EQ(profile.edge_count(g.find_edge(0, 2)), 1u);
}

}  // namespace
}  // namespace apcc::cfg
