// Campaign tests: the suite x grid runner must be byte-identical to
// running each workload's grid sequentially through run_sweep -- for
// any worker count, with shared (borrowed, materialized) FrontierCache
// geometry on and off -- and its per-workload grouping, error and
// geometry plumbing must behave.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hpp"
#include "runtime/frontier_cache.hpp"
#include "support/assert.hpp"
#include "sweep/campaign.hpp"
#include "workloads/suite.hpp"

namespace apcc::sweep {
namespace {

const std::vector<workloads::WorkloadKind>& kinds_under_test() {
  static const auto* kinds = new std::vector<workloads::WorkloadKind>{
      workloads::WorkloadKind::kAdpcmLike, workloads::WorkloadKind::kCrcLike,
      workloads::WorkloadKind::kG721Like};
  return *kinds;
}

const std::vector<core::CodeCompressionSystem>& systems_under_test() {
  static const auto* systems = [] {
    auto* out = new std::vector<core::CodeCompressionSystem>();
    for (const auto kind : kinds_under_test()) {
      out->push_back(core::CodeCompressionSystem::from_workload(
          workloads::make_workload(kind)));
    }
    return out;
  }();
  return *systems;
}

std::vector<CampaignWorkload> campaign_workloads() {
  std::vector<CampaignWorkload> workloads;
  const auto& systems = systems_under_test();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    workloads.push_back(CampaignWorkload{
        workloads::workload_name(kinds_under_test()[i]), &systems[i].cfg(),
        &systems[i].image(), &systems[i].default_trace()});
  }
  return workloads;
}

/// A mixed grid shared by every workload: all strategies, two ks, both
/// budget modes. The tight budget is sized off the largest executed
/// block across all test workloads so one grid is valid everywhere.
std::vector<SweepTask> shared_grid() {
  std::uint64_t largest = 0;
  for (const auto& system : systems_under_test()) {
    for (const auto b : system.default_trace()) {
      largest = std::max(largest, system.cfg().block(b).size_bytes());
    }
  }
  std::vector<SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 4u}) {
      for (const bool tight : {false, true}) {
        SweepTask task;
        task.config.policy.strategy = strategy;
        task.config.policy.compress_k = k;
        task.config.policy.predecompress_k = k;
        if (tight) task.config.policy.memory_budget = largest * 3 + 32;
        task.label = std::string(runtime::strategy_name(strategy)) + "/k" +
                     std::to_string(k) + (tight ? "/tight" : "/unbounded");
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

void expect_identical(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.label, b.label);
  const sim::RunResult& x = a.result;
  const sim::RunResult& y = b.result;
  EXPECT_EQ(x.total_cycles, y.total_cycles);
  EXPECT_EQ(x.baseline_cycles, y.baseline_cycles);
  EXPECT_EQ(x.busy_cycles, y.busy_cycles);
  EXPECT_EQ(x.stall_cycles, y.stall_cycles);
  EXPECT_EQ(x.exception_cycles, y.exception_cycles);
  EXPECT_EQ(x.critical_decompress_cycles, y.critical_decompress_cycles);
  EXPECT_EQ(x.patch_cycles, y.patch_cycles);
  EXPECT_EQ(x.block_entries, y.block_entries);
  EXPECT_EQ(x.exceptions, y.exceptions);
  EXPECT_EQ(x.demand_decompressions, y.demand_decompressions);
  EXPECT_EQ(x.predecompressions, y.predecompressions);
  EXPECT_EQ(x.predecompress_hits, y.predecompress_hits);
  EXPECT_EQ(x.predecompress_partial, y.predecompress_partial);
  EXPECT_EQ(x.wasted_predecompressions, y.wasted_predecompressions);
  EXPECT_EQ(x.deletions, y.deletions);
  EXPECT_EQ(x.evictions, y.evictions);
  EXPECT_EQ(x.patches, y.patches);
  EXPECT_EQ(x.unpatches, y.unpatches);
  EXPECT_EQ(x.dropped_requests, y.dropped_requests);
  EXPECT_EQ(x.decomp_helper_busy_cycles, y.decomp_helper_busy_cycles);
  EXPECT_EQ(x.comp_helper_busy_cycles, y.comp_helper_busy_cycles);
  EXPECT_EQ(x.original_image_bytes, y.original_image_bytes);
  EXPECT_EQ(x.compressed_area_bytes, y.compressed_area_bytes);
  EXPECT_EQ(x.peak_occupancy_bytes, y.peak_occupancy_bytes);
  EXPECT_EQ(x.avg_occupancy_bytes, y.avg_occupancy_bytes);
  EXPECT_EQ(x.codec_ratio, y.codec_ratio);
}

TEST(Campaign, ParallelCampaignIdenticalToSequentialPerWorkloadGrids) {
  const auto workloads = campaign_workloads();
  const auto grid = shared_grid();

  // The reference: each workload's grid run sequentially through the
  // single-workload runner, geometry owned per engine.
  std::vector<std::vector<SweepOutcome>> expected;
  SweepOptions sequential;
  sequential.workers = 1;
  for (const auto& w : workloads) {
    expected.push_back(run_sweep(*w.cfg, *w.image, *w.trace, grid, sequential));
  }

  for (const bool share : {false, true}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      CampaignOptions options;
      options.workers = workers;
      options.share_frontiers = share;
      const auto results = run_campaign(workloads, grid, options);
      ASSERT_EQ(results.size(), workloads.size())
          << workers << " workers, share=" << share;
      for (std::size_t w = 0; w < results.size(); ++w) {
        SCOPED_TRACE(results[w].workload + " @ " + std::to_string(workers) +
                     " workers, share=" + std::to_string(share));
        EXPECT_EQ(results[w].workload, workloads[w].name);
        ASSERT_EQ(results[w].outcomes.size(), expected[w].size());
        for (std::size_t i = 0; i < expected[w].size(); ++i) {
          expect_identical(expected[w][i], results[w].outcomes[i]);
        }
      }
    }
  }
}

TEST(Campaign, BatchedIdenticalToSequential) {
  // Batches never span workloads, so a 12-task grid at batch 8 gives
  // each workload an 8 + 4 chunking; results must stay byte-identical
  // to the per-engine sequential reference for every (batch, workers,
  // share_frontiers) combination.
  const auto workloads = campaign_workloads();
  const auto grid = shared_grid();
  std::vector<std::vector<SweepOutcome>> expected;
  SweepOptions sequential;
  sequential.workers = 1;
  for (const auto& w : workloads) {
    expected.push_back(run_sweep(*w.cfg, *w.image, *w.trace, grid, sequential));
  }

  for (const bool share : {false, true}) {
    for (const std::uint32_t batch : {4u, 8u}) {
      for (const unsigned workers : {1u, 2u, 4u}) {
        CampaignOptions options;
        options.workers = workers;
        options.share_frontiers = share;
        options.batch_cells = batch;
        const auto results = run_campaign(workloads, grid, options);
        ASSERT_EQ(results.size(), workloads.size());
        for (std::size_t w = 0; w < results.size(); ++w) {
          SCOPED_TRACE(results[w].workload + " @ batch " +
                       std::to_string(batch) + " x " +
                       std::to_string(workers) +
                       " workers, share=" + std::to_string(share));
          EXPECT_EQ(results[w].workload, workloads[w].name);
          ASSERT_EQ(results[w].outcomes.size(), expected[w].size());
          for (std::size_t i = 0; i < expected[w].size(); ++i) {
            expect_identical(expected[w][i], results[w].outcomes[i]);
          }
        }
      }
    }
  }
}

TEST(Campaign, OutcomesGroupedPerWorkloadInTaskOrder) {
  const auto workloads = campaign_workloads();
  const auto grid = shared_grid();
  CampaignOptions options;
  options.workers = 4;
  const auto results = run_campaign(workloads, grid, options);
  ASSERT_EQ(results.size(), workloads.size());
  for (std::size_t w = 0; w < results.size(); ++w) {
    EXPECT_EQ(results[w].workload, workloads[w].name);
    ASSERT_EQ(results[w].outcomes.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(results[w].outcomes[i].index, i);
      EXPECT_EQ(results[w].outcomes[i].label, grid[i].label);
    }
  }
}

TEST(Campaign, EmptyGridYieldsNamedEmptyResults) {
  const auto results = run_campaign(campaign_workloads(), {});
  ASSERT_EQ(results.size(), kinds_under_test().size());
  for (std::size_t w = 0; w < results.size(); ++w) {
    EXPECT_EQ(results[w].workload,
              workloads::workload_name(kinds_under_test()[w]));
    EXPECT_TRUE(results[w].outcomes.empty());
  }
}

TEST(Campaign, EmptyWorkloadsYieldNothing) {
  EXPECT_TRUE(run_campaign({}, shared_grid()).empty());
}

TEST(Campaign, NullWorkloadInputsAreRejected) {
  auto workloads = campaign_workloads();
  workloads[1].trace = nullptr;
  EXPECT_THROW({ (void)run_campaign(workloads, shared_grid()); },
               apcc::CheckError);
}

TEST(Campaign, WorkerFailureRethrownOnCaller) {
  const auto workloads = campaign_workloads();
  auto grid = shared_grid();
  // A budget smaller than any executed block: the engine's placement
  // loop finds no victim and no in-flight completion, and throws --
  // from a pool worker, which must surface on the calling thread.
  grid[2].config.policy.memory_budget = 1;
  for (const unsigned workers : {1u, 4u}) {
    CampaignOptions options;
    options.workers = workers;
    EXPECT_THROW({ (void)run_campaign(workloads, grid, options); },
                 apcc::CheckError)
        << workers << " workers";
  }
}

TEST(Campaign, MaterializedCacheHoldsTheSameListsAsALazyOne) {
  // The geometry-sharing invariant at its root: a materialized cache
  // hands out exactly the lists a per-engine lazy cache would compute,
  // for every block and every k the campaign would key on.
  const auto& system = systems_under_test().front();
  for (const unsigned k : {1u, 4u}) {
    runtime::FrontierCache shared(system.cfg(), k);
    shared.materialize();
    EXPECT_TRUE(shared.materialized());
    EXPECT_EQ(shared.k(), k);
    const runtime::FrontierCache lazy(system.cfg(), k);
    for (cfg::BlockId b = 0; b < system.cfg().block_count(); ++b) {
      const auto got = shared.candidates(b);
      const auto want = lazy.candidates(b);
      ASSERT_EQ(got.size(), want.size()) << "block " << b << " k " << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].block, want[i].block);
        EXPECT_EQ(got[i].distance, want[i].distance);
      }
    }
  }
}

TEST(Campaign, CoreEntryPointMatchesSweepLayer) {
  // core::run_campaign is a veneer over sweep::run_campaign using each
  // system's default trace; the two must agree exactly.
  const auto& systems = systems_under_test();
  std::vector<core::CampaignEntry> entries;
  for (std::size_t i = 0; i < systems.size(); ++i) {
    entries.push_back(
        {workloads::workload_name(kinds_under_test()[i]), &systems[i]});
  }
  const auto grid = shared_grid();
  CampaignOptions options;
  options.workers = 2;
  const auto via_core = core::run_campaign(entries, grid, options);
  const auto via_sweep = run_campaign(campaign_workloads(), grid, options);
  ASSERT_EQ(via_core.size(), via_sweep.size());
  for (std::size_t w = 0; w < via_core.size(); ++w) {
    EXPECT_EQ(via_core[w].workload, via_sweep[w].workload);
    ASSERT_EQ(via_core[w].outcomes.size(), via_sweep[w].outcomes.size());
    for (std::size_t i = 0; i < via_core[w].outcomes.size(); ++i) {
      expect_identical(via_sweep[w].outcomes[i], via_core[w].outcomes[i]);
    }
  }
}

TEST(Campaign, CoreEntryPointRejectsNullSystem) {
  std::vector<core::CampaignEntry> entries = {{"broken", nullptr}};
  EXPECT_THROW({ (void)core::run_campaign(entries, shared_grid()); },
               apcc::CheckError);
}

}  // namespace
}  // namespace apcc::sweep
