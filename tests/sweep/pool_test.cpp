// Resident Pool semantics: job ids, cross-job scheduling, failure
// cancellation scoped to one job, wait/drain, the zero-item fast
// path, and the QoS scheduler -- strict priority classes with the
// lowest-id tie-break, per-job worker budgets, and cancellation of
// queued-but-unstarted items across priority classes. (run_sweep /
// run_campaign equivalence is pinned by the sweep and campaign
// differential tests; these cover the pool directly. The TSan CI job
// runs this binary.)
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "sweep/pool.hpp"

namespace apcc::sweep {
namespace {

TEST(Pool, RunsEveryIndexExactlyOnce) {
  Pool pool(4);
  std::mutex mutex;
  std::multiset<std::size_t> seen;
  const auto id = pool.submit(
      100,
      [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(i);
      },
      nullptr);
  pool.wait(id);
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Pool, JobIdsAreUniqueAndFinalizeRunsOnce) {
  Pool pool(2);
  std::atomic<int> finalized{0};
  const auto a = pool.submit(3, [](std::size_t) {}, [&](std::exception_ptr) {
    ++finalized;
  });
  const auto b = pool.submit(3, [](std::size_t) {}, [&](std::exception_ptr) {
    ++finalized;
  });
  EXPECT_NE(a, b);
  pool.drain();
  EXPECT_EQ(finalized.load(), 2);
}

TEST(Pool, SeveralJobsInFlightAllComplete) {
  Pool pool(3);
  std::atomic<std::size_t> items{0};
  std::vector<Pool::JobId> ids;
  for (int j = 0; j < 5; ++j) {
    ids.push_back(pool.submit(
        20, [&](std::size_t) { ++items; }, nullptr));
  }
  for (const auto id : ids) pool.wait(id);
  EXPECT_EQ(items.load(), 100u);
}

TEST(Pool, FailureCancelsOnlyTheFailingJob) {
  Pool pool(2);
  std::atomic<std::size_t> poisoned_ran{0};
  std::atomic<std::size_t> healthy_ran{0};
  std::exception_ptr poisoned_failure;
  std::exception_ptr healthy_failure;
  const auto poisoned = pool.submit(
      50,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("boom");
        ++poisoned_ran;
      },
      [&](std::exception_ptr failure) { poisoned_failure = failure; });
  const auto healthy = pool.submit(
      50, [&](std::size_t) { ++healthy_ran; },
      [&](std::exception_ptr failure) { healthy_failure = failure; });
  pool.wait(poisoned);
  pool.wait(healthy);
  ASSERT_TRUE(poisoned_failure != nullptr);
  EXPECT_THROW(std::rethrow_exception(poisoned_failure), std::runtime_error);
  EXPECT_TRUE(healthy_failure == nullptr);
  EXPECT_EQ(healthy_ran.load(), 50u);  // unaffected by the other job
  EXPECT_LT(poisoned_ran.load(), 50u);  // tail skipped after the throw
}

TEST(Pool, ZeroItemJobFinalizesImmediately) {
  Pool pool(1);
  bool finalized = false;
  const auto id = pool.submit(0, nullptr, [&](std::exception_ptr failure) {
    EXPECT_TRUE(failure == nullptr);
    finalized = true;
  });
  EXPECT_TRUE(finalized);  // synchronous, no pool round trip
  pool.wait(id);  // and wait() on it returns at once
}

TEST(Pool, WaitOnUnknownIdReturns) {
  Pool pool(1);
  pool.wait(12345);  // never issued: must not hang
}

TEST(Pool, DestructorDrainsOutstandingJobs) {
  std::atomic<std::size_t> ran{0};
  {
    Pool pool(2);
    pool.submit(64, [&](std::size_t) { ++ran; }, nullptr);
  }
  EXPECT_EQ(ran.load(), 64u);
}

/// Parks pool workers until release(), so tests can queue jobs while
/// nothing can start -- the deterministic setup for scheduling tests.
/// await_arrivals() lets the test be sure the workers really are
/// parked (claims already made) before it submits anything else.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void await_arrivals(unsigned n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  unsigned arrived_ = 0;
  bool open_ = false;
};

TEST(Pool, PriorityName) {
  EXPECT_STREQ(priority_name(Priority::kHigh), "high");
  EXPECT_STREQ(priority_name(Priority::kNormal), "normal");
  EXPECT_STREQ(priority_name(Priority::kBatch), "batch");
}

TEST(Pool, StrictPriorityClaimsHighestClassLowestIdFirst) {
  // One worker, parked behind a gate while four jobs queue up: a batch
  // job, a normal job, and two high jobs. Released, the single worker
  // must drain them in strict class order -- and within the high class
  // in submission (= lowest job id) order.
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::mutex mutex;
  std::vector<char> order;
  const auto recorder = [&](char tag) {
    return [&, tag](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  pool.submit(2, recorder('a'), nullptr, {Priority::kBatch, 0});
  pool.submit(2, recorder('b'), nullptr, {Priority::kNormal, 0});
  pool.submit(2, recorder('c'), nullptr, {Priority::kHigh, 0});
  pool.submit(2, recorder('d'), nullptr, {Priority::kHigh, 0});
  gate.release();
  pool.drain();
  EXPECT_EQ((std::vector<char>{'c', 'c', 'd', 'd', 'b', 'b', 'a', 'a'}),
            order);
}

TEST(Pool, WorkerBudgetCapsConcurrencyAndFreesSlots) {
  Pool pool(4);
  std::atomic<unsigned> running{0};
  std::atomic<unsigned> peak{0};
  std::atomic<std::size_t> other_ran{0};
  const auto budgeted = pool.submit(
      48,
      [&](std::size_t) {
        const unsigned now = ++running;
        unsigned seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        // A little work so items overlap when the scheduler lets them.
        volatile unsigned spin = 0;
        for (int i = 0; i < 2000; ++i) spin = spin + static_cast<unsigned>(i);
        --running;
      },
      nullptr, {Priority::kNormal, 2});
  // The surplus workers must flow to other jobs instead of idling.
  const auto other = pool.submit(
      48, [&](std::size_t) { ++other_ran; }, nullptr,
      {Priority::kBatch, 0});
  pool.wait(budgeted);
  pool.wait(other);
  EXPECT_LE(peak.load(), 2u);  // the budget is a hard cap
  EXPECT_EQ(other_ran.load(), 48u);
}

TEST(Pool, FailureCancelsQueuedItemsAcrossPriorityClasses) {
  // A failing high-priority job with queued-but-unstarted items must
  // cancel only its own items -- the batch-class job sharing the pool
  // runs to completion -- and leave the pool serviceable. The budget
  // of 1 makes the poison job sequential, so its item 0 throws before
  // any sibling starts: every remaining item is provably
  // queued-but-unstarted and must be skipped.
  Pool pool(2);
  Gate gate;
  pool.submit(2, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(2);

  std::atomic<std::size_t> poison_ran{0};
  std::atomic<std::size_t> healthy_ran{0};
  std::exception_ptr poison_failure;
  std::exception_ptr healthy_failure;
  const auto poison = pool.submit(
      40,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("boom");
        ++poison_ran;
      },
      [&](std::exception_ptr failure) { poison_failure = failure; },
      {Priority::kHigh, 1});
  const auto healthy = pool.submit(
      40, [&](std::size_t) { ++healthy_ran; },
      [&](std::exception_ptr failure) { healthy_failure = failure; },
      {Priority::kBatch, 0});
  gate.release();
  pool.wait(poison);
  pool.wait(healthy);
  ASSERT_TRUE(poison_failure != nullptr);
  EXPECT_THROW(std::rethrow_exception(poison_failure), std::runtime_error);
  EXPECT_EQ(poison_ran.load(), 0u);    // every sibling was unstarted
  EXPECT_TRUE(healthy_failure == nullptr);
  EXPECT_EQ(healthy_ran.load(), 40u);  // the other class is untouched

  // Serviceable afterwards: a fresh job runs cleanly.
  std::atomic<std::size_t> after{0};
  const auto next = pool.submit(
      8, [&](std::size_t) { ++after; }, nullptr, {Priority::kHigh, 0});
  pool.wait(next);
  EXPECT_EQ(after.load(), 8u);
}

TEST(Pool, ParallelForIndexCoversAndRethrows) {
  std::atomic<std::size_t> count{0};
  detail::parallel_for_index(17, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 17u);
  EXPECT_THROW(
      detail::parallel_for_index(
          8, 2, [](std::size_t i) { if (i == 3) throw std::logic_error("x"); }),
      std::logic_error);
}

}  // namespace
}  // namespace apcc::sweep
