// Resident Pool semantics: job ids, cross-job scheduling, failure
// cancellation scoped to one job, wait/drain, the zero-item fast
// path, the QoS scheduler -- strict priority classes with the
// lowest-id tie-break, per-job worker budgets, and cancellation of
// queued-but-unstarted items across priority classes -- and the
// robustness surface: cooperative cancellation (queued skip + token
// signalling + self-cancel), dispatch-time deadlines, failure-wins
// outcome precedence, stop(kDrain|kAbort), and submit-after-stop.
// (run_sweep / run_campaign equivalence is pinned by the sweep and
// campaign differential tests; these cover the pool directly. The
// TSan CI job runs this binary.)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sweep/pool.hpp"

namespace apcc::sweep {
namespace {

/// SubmitOptions carrying just the QoS fields the scheduling tests vary.
SubmitOptions qos(Priority priority, unsigned max_workers) {
  SubmitOptions options;
  options.priority = priority;
  options.max_workers = max_workers;
  return options;
}

TEST(Pool, RunsEveryIndexExactlyOnce) {
  Pool pool(4);
  std::mutex mutex;
  std::multiset<std::size_t> seen;
  const auto id = pool.submit(
      100,
      [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(i);
      },
      nullptr);
  pool.wait(id);
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Pool, JobIdsAreUniqueAndFinalizeRunsOnce) {
  Pool pool(2);
  std::atomic<int> finalized{0};
  const auto a = pool.submit(3, [](std::size_t) {},
                             [&](const FinalizeInfo&) { ++finalized; });
  const auto b = pool.submit(3, [](std::size_t) {},
                             [&](const FinalizeInfo&) { ++finalized; });
  EXPECT_NE(a, b);
  pool.drain();
  EXPECT_EQ(finalized.load(), 2);
}

TEST(Pool, SeveralJobsInFlightAllComplete) {
  Pool pool(3);
  std::atomic<std::size_t> items{0};
  std::vector<Pool::JobId> ids;
  for (int j = 0; j < 5; ++j) {
    ids.push_back(pool.submit(
        20, [&](std::size_t) { ++items; }, nullptr));
  }
  for (const auto id : ids) pool.wait(id);
  EXPECT_EQ(items.load(), 100u);
}

TEST(Pool, FailureCancelsOnlyTheFailingJob) {
  Pool pool(2);
  std::atomic<std::size_t> poisoned_ran{0};
  std::atomic<std::size_t> healthy_ran{0};
  FinalizeInfo poisoned_info;
  FinalizeInfo healthy_info;
  const auto poisoned = pool.submit(
      50,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("boom");
        ++poisoned_ran;
      },
      [&](const FinalizeInfo& info) { poisoned_info = info; });
  const auto healthy = pool.submit(
      50, [&](std::size_t) { ++healthy_ran; },
      [&](const FinalizeInfo& info) { healthy_info = info; });
  pool.wait(poisoned);
  pool.wait(healthy);
  EXPECT_EQ(poisoned_info.outcome, JobOutcome::kFailed);
  ASSERT_TRUE(poisoned_info.failure != nullptr);
  EXPECT_THROW(std::rethrow_exception(poisoned_info.failure),
               std::runtime_error);
  EXPECT_EQ(healthy_info.outcome, JobOutcome::kCompleted);
  EXPECT_TRUE(healthy_info.failure == nullptr);
  EXPECT_EQ(healthy_ran.load(), 50u);  // unaffected by the other job
  EXPECT_LT(poisoned_ran.load(), 50u);  // tail skipped after the throw
}

TEST(Pool, ZeroItemJobFinalizesImmediately) {
  Pool pool(1);
  bool finalized = false;
  const auto id = pool.submit(0, nullptr, [&](const FinalizeInfo& info) {
    EXPECT_EQ(info.outcome, JobOutcome::kCompleted);
    EXPECT_TRUE(info.failure == nullptr);
    finalized = true;
  });
  EXPECT_TRUE(finalized);  // synchronous, no pool round trip
  pool.wait(id);  // and wait() on it returns at once
}

TEST(Pool, WaitOnUnknownIdReturns) {
  Pool pool(1);
  pool.wait(12345);  // never issued: must not hang
}

TEST(Pool, DestructorDrainsOutstandingJobs) {
  std::atomic<std::size_t> ran{0};
  {
    Pool pool(2);
    pool.submit(64, [&](std::size_t) { ++ran; }, nullptr);
  }
  EXPECT_EQ(ran.load(), 64u);
}

/// Parks pool workers until release(), so tests can queue jobs while
/// nothing can start -- the deterministic setup for scheduling tests.
/// await_arrivals() lets the test be sure the workers really are
/// parked (claims already made) before it submits anything else.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void await_arrivals(unsigned n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  unsigned arrived_ = 0;
  bool open_ = false;
};

TEST(Pool, PriorityName) {
  EXPECT_STREQ(priority_name(Priority::kHigh), "high");
  EXPECT_STREQ(priority_name(Priority::kNormal), "normal");
  EXPECT_STREQ(priority_name(Priority::kBatch), "batch");
}

TEST(Pool, StrictPriorityClaimsHighestClassLowestIdFirst) {
  // One worker, parked behind a gate while four jobs queue up: a batch
  // job, a normal job, and two high jobs. Released, the single worker
  // must drain them in strict class order -- and within the high class
  // in submission (= lowest job id) order.
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::mutex mutex;
  std::vector<char> order;
  const auto recorder = [&](char tag) {
    return [&, tag](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  pool.submit(2, recorder('a'), nullptr, qos(Priority::kBatch, 0));
  pool.submit(2, recorder('b'), nullptr, qos(Priority::kNormal, 0));
  pool.submit(2, recorder('c'), nullptr, qos(Priority::kHigh, 0));
  pool.submit(2, recorder('d'), nullptr, qos(Priority::kHigh, 0));
  gate.release();
  pool.drain();
  EXPECT_EQ((std::vector<char>{'c', 'c', 'd', 'd', 'b', 'b', 'a', 'a'}),
            order);
}

TEST(Pool, WorkerBudgetCapsConcurrencyAndFreesSlots) {
  Pool pool(4);
  std::atomic<unsigned> running{0};
  std::atomic<unsigned> peak{0};
  std::atomic<std::size_t> other_ran{0};
  const auto budgeted = pool.submit(
      48,
      [&](std::size_t) {
        const unsigned now = ++running;
        unsigned seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        // A little work so items overlap when the scheduler lets them.
        volatile unsigned spin = 0;
        for (int i = 0; i < 2000; ++i) spin = spin + static_cast<unsigned>(i);
        --running;
      },
      nullptr, qos(Priority::kNormal, 2));
  // The surplus workers must flow to other jobs instead of idling.
  const auto other = pool.submit(
      48, [&](std::size_t) { ++other_ran; }, nullptr,
      qos(Priority::kBatch, 0));
  pool.wait(budgeted);
  pool.wait(other);
  EXPECT_LE(peak.load(), 2u);  // the budget is a hard cap
  EXPECT_EQ(other_ran.load(), 48u);
}

TEST(Pool, FailureCancelsQueuedItemsAcrossPriorityClasses) {
  // A failing high-priority job with queued-but-unstarted items must
  // cancel only its own items -- the batch-class job sharing the pool
  // runs to completion -- and leave the pool serviceable. The budget
  // of 1 makes the poison job sequential, so its item 0 throws before
  // any sibling starts: every remaining item is provably
  // queued-but-unstarted and must be skipped.
  Pool pool(2);
  Gate gate;
  pool.submit(2, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(2);

  std::atomic<std::size_t> poison_ran{0};
  std::atomic<std::size_t> healthy_ran{0};
  FinalizeInfo poison_info;
  FinalizeInfo healthy_info;
  const auto poison = pool.submit(
      40,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("boom");
        ++poison_ran;
      },
      [&](const FinalizeInfo& info) { poison_info = info; },
      qos(Priority::kHigh, 1));
  const auto healthy = pool.submit(
      40, [&](std::size_t) { ++healthy_ran; },
      [&](const FinalizeInfo& info) { healthy_info = info; },
      qos(Priority::kBatch, 0));
  gate.release();
  pool.wait(poison);
  pool.wait(healthy);
  EXPECT_EQ(poison_info.outcome, JobOutcome::kFailed);
  ASSERT_TRUE(poison_info.failure != nullptr);
  EXPECT_THROW(std::rethrow_exception(poison_info.failure),
               std::runtime_error);
  EXPECT_EQ(poison_ran.load(), 0u);    // every sibling was unstarted
  EXPECT_TRUE(healthy_info.failure == nullptr);
  EXPECT_EQ(healthy_ran.load(), 40u);  // the other class is untouched

  // Serviceable afterwards: a fresh job runs cleanly.
  std::atomic<std::size_t> after{0};
  const auto next = pool.submit(
      8, [&](std::size_t) { ++after; }, nullptr, qos(Priority::kHigh, 0));
  pool.wait(next);
  EXPECT_EQ(after.load(), 8u);
}

TEST(Pool, CancelSkipsQueuedItemsImmediately) {
  // The only worker is parked behind the gate, so the second job is
  // provably all-queued when cancel() lands: it must finalize as
  // kCancelled on the cancelling thread, before any worker frees up,
  // and run zero items.
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::atomic<std::size_t> ran{0};
  FinalizeInfo info;
  std::atomic<bool> finalized{false};
  const auto id = pool.submit(
      16, [&](std::size_t) { ++ran; },
      [&](const FinalizeInfo& i) {
        info = i;
        finalized = true;
      });
  EXPECT_TRUE(pool.cancel(id));
  EXPECT_TRUE(finalized.load());  // resolved without a worker
  EXPECT_EQ(info.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_FALSE(pool.cancel(id));  // second cancel is a no-op
  gate.release();
  pool.drain();
}

TEST(Pool, CancelSignalsRunningItemsViaToken) {
  // A running item polls the shared token at its "task boundary" and
  // bails once cancel() requests it; the job finalizes kCancelled and
  // the items queued behind the running one never start. One worker,
  // so item 0 is provably the only item ever dispatched.
  Pool pool(1);
  const auto token = std::make_shared<CancelToken>();
  Gate started;
  std::atomic<std::size_t> ran{0};
  FinalizeInfo info;
  SubmitOptions options;
  options.cancel = token;
  const auto id = pool.submit(
      32,
      [&](std::size_t i) {
        if (i == 0) {
          started.wait();  // parked until the cancel below has landed
          // Task boundary: poll the token, stop early once requested.
          if (token->cancelled()) return;
        }
        ++ran;
      },
      [&](const FinalizeInfo& i) { info = i; }, options);
  started.await_arrivals(1);
  EXPECT_TRUE(pool.cancel(id));
  EXPECT_TRUE(token->cancelled());  // cancel() requested the token
  started.release();
  pool.wait(id);
  EXPECT_EQ(info.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(ran.load(), 0u);  // item 0 bailed; the tail was skipped
}

TEST(Pool, ItemCanCancelItsOwnJobThroughTheToken) {
  // Self-cancellation: an item requests the token; the claim loop (or
  // the post-item check, if this was the last claim) observes it and
  // the job finalizes kCancelled.
  Pool pool(1);
  const auto token = std::make_shared<CancelToken>();
  std::atomic<std::size_t> ran{0};
  FinalizeInfo info;
  SubmitOptions options;
  options.cancel = token;
  const auto id = pool.submit(
      8,
      [&](std::size_t i) {
        ++ran;
        if (i == 2) token->request();
      },
      [&](const FinalizeInfo& i) { info = i; }, options);
  pool.wait(id);
  EXPECT_EQ(info.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(ran.load(), 3u);  // items 0..2 ran, the rest were skipped
}

TEST(Pool, DeadlineIsEnforcedAtDispatch) {
  Pool pool(2);
  // Already expired: no item may start.
  {
    std::atomic<std::size_t> ran{0};
    FinalizeInfo info;
    SubmitOptions options;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    const auto id = pool.submit(
        8, [&](std::size_t) { ++ran; },
        [&](const FinalizeInfo& i) { info = i; }, options);
    pool.wait(id);
    EXPECT_EQ(info.outcome, JobOutcome::kDeadlineExceeded);
    EXPECT_EQ(ran.load(), 0u);
  }
  // Far in the future: runs to completion.
  {
    std::atomic<std::size_t> ran{0};
    FinalizeInfo info;
    SubmitOptions options;
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::hours(1);
    const auto id = pool.submit(
        8, [&](std::size_t) { ++ran; },
        [&](const FinalizeInfo& i) { info = i; }, options);
    pool.wait(id);
    EXPECT_EQ(info.outcome, JobOutcome::kCompleted);
    EXPECT_EQ(ran.load(), 8u);
  }
}

TEST(Pool, FailureWinsOverCancel) {
  // An item throws while a cancel() races in: the finalize must report
  // kFailed and carry the exception -- callers never lose the error.
  Pool pool(1);
  FinalizeInfo info;
  const auto id = pool.submit(
      4,
      [&](std::size_t) { throw std::runtime_error("boom"); },
      [&](const FinalizeInfo& i) { info = i; });
  pool.wait(id);
  pool.cancel(id);  // after finalize: a no-op, not an overwrite
  EXPECT_EQ(info.outcome, JobOutcome::kFailed);
  ASSERT_TRUE(info.failure != nullptr);
}

TEST(Pool, StopDrainFinishesQueuedJobs) {
  Pool pool(2);
  std::atomic<std::size_t> ran{0};
  FinalizeInfo info;
  pool.submit(
      24, [&](std::size_t) { ++ran; },
      [&](const FinalizeInfo& i) { info = i; });
  pool.stop(StopMode::kDrain);
  EXPECT_EQ(ran.load(), 24u);
  EXPECT_EQ(info.outcome, JobOutcome::kCompleted);
  pool.stop(StopMode::kDrain);  // idempotent
}

TEST(Pool, StopAbortCancelsQueuedJobs) {
  // With the lone worker parked, the queued job's items are all
  // unclaimed at stop(kAbort): the job must finalize kCancelled and
  // run nothing; the parked job still finishes its in-flight item.
  // stop() runs on a helper thread (it joins the parked worker); the
  // queued job's token flipping is the proof the abort landed before
  // the gate opens, so queued_ran == 0 is deterministic.
  Pool pool(1);
  Gate gate;
  std::atomic<std::size_t> first_ran{0};
  pool.submit(1, [&](std::size_t) {
    gate.wait();
    ++first_ran;
  }, nullptr);
  gate.await_arrivals(1);

  std::atomic<std::size_t> queued_ran{0};
  FinalizeInfo info;
  const auto token = std::make_shared<CancelToken>();
  SubmitOptions options;
  options.cancel = token;
  pool.submit(
      16, [&](std::size_t) { ++queued_ran; },
      [&](const FinalizeInfo& i) { info = i; }, options);
  std::thread stopper([&] { pool.stop(StopMode::kAbort); });
  while (!token->cancelled()) std::this_thread::yield();
  gate.release();
  stopper.join();
  EXPECT_EQ(first_ran.load(), 1u);  // running items finish
  EXPECT_EQ(queued_ran.load(), 0u);
  EXPECT_EQ(info.outcome, JobOutcome::kCancelled);
}

TEST(Pool, SubmitAfterStopFinalizesAsCancelled) {
  Pool pool(1);
  pool.stop(StopMode::kDrain);
  std::atomic<std::size_t> ran{0};
  FinalizeInfo info;
  bool finalized = false;
  const auto token = std::make_shared<CancelToken>();
  SubmitOptions options;
  options.cancel = token;
  const auto id = pool.submit(
      8, [&](std::size_t) { ++ran; },
      [&](const FinalizeInfo& i) {
        info = i;
        finalized = true;
      },
      options);
  EXPECT_TRUE(finalized);  // synchronous: no worker left to stall on
  EXPECT_EQ(info.outcome, JobOutcome::kCancelled);
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(ran.load(), 0u);
  pool.wait(id);  // the id is retired, so wait() returns at once
}

/// SubmitOptions carrying the fair-share fields the QoS tests vary.
SubmitOptions tenant(const std::string& client, unsigned weight = 1,
                     Priority priority = Priority::kNormal) {
  SubmitOptions options;
  options.priority = priority;
  options.client = client;
  options.weight = weight;
  return options;
}

TEST(Pool, FairShareAlternatesEqualWeightTenants) {
  // One worker parked while two equal-weight tenants queue six items
  // each: the virtual-time pick must strictly alternate their items
  // (ties break to the lexicographically smaller tag, so "heavy"
  // leads), instead of draining the lower job id first.
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::mutex mutex;
  std::vector<char> order;
  const auto recorder = [&](char tag) {
    return [&, tag](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  pool.submit(6, recorder('h'), nullptr, tenant("heavy"));
  pool.submit(6, recorder('l'), nullptr, tenant("light"));
  gate.release();
  pool.drain();
  EXPECT_EQ((std::vector<char>{'h', 'l', 'h', 'l', 'h', 'l', 'h', 'l',
                               'h', 'l', 'h', 'l'}),
            order);
}

TEST(Pool, LightTenantIsNotStarvedByAHeavyBacklog) {
  // The acceptance scenario: one tenant has piled up three 8-item jobs
  // when a second tenant submits four items. Fair share completes the
  // light tenant's work interleaved with the backlog's head -- while
  // the strict lowest-id reference (fair_share off) makes it wait out
  // all 24 backlog items. Same items, same results, different *when*.
  for (const bool fair : {true, false}) {
    SCOPED_TRACE(fair ? "fair-share" : "fifo reference");
    Pool pool(PoolOptions{1, fair});
    Gate gate;
    pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
    gate.await_arrivals(1);

    std::mutex mutex;
    std::vector<char> order;
    const auto recorder = [&](char tag) {
      return [&, tag](std::size_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(tag);
      };
    };
    for (int j = 0; j < 3; ++j) {
      pool.submit(8, recorder('h'), nullptr, tenant("heavy"));
    }
    pool.submit(4, recorder('l'), nullptr, tenant("light"));
    gate.release();
    pool.drain();
    ASSERT_EQ(order.size(), 28u);
    const auto last_light =
        std::find(order.rbegin(), order.rend(), 'l');
    const auto last_index = static_cast<std::size_t>(
        order.rend() - last_light - 1);
    if (fair) {
      // Strict alternation until the light tenant is done: its last
      // item is the 8th dispatch, nowhere near the backlog's tail.
      EXPECT_EQ(last_index, 7u);
      for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(order[i], (i % 2 == 0) ? 'h' : 'l') << "position " << i;
      }
    } else {
      // The reference: light was submitted last, so it runs last.
      EXPECT_EQ(last_index, 27u);
      EXPECT_EQ(order[23], 'h');
      EXPECT_EQ(order[24], 'l');
    }
  }
}

TEST(Pool, WeightsSkewDispatchInProportion) {
  // Weight 3 vs weight 1: the heavy-weighted tenant's items cost a
  // third of the virtual time, so it sustains three dispatches per one
  // of the other tenant's under contention -- 6 of the first 8 -- and
  // the light-weighted tenant still finishes (weights shift share,
  // they never starve).
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::mutex mutex;
  std::vector<char> order;
  const auto recorder = [&](char tag) {
    return [&, tag](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  pool.submit(12, recorder('b'), nullptr, tenant("big", 3));
  pool.submit(12, recorder('s'), nullptr, tenant("small", 1));
  gate.release();
  pool.drain();
  ASSERT_EQ(order.size(), 24u);
  EXPECT_EQ(std::count(order.begin(), order.begin() + 8, 'b'), 6);
  EXPECT_EQ(order.back(), 's');  // big exhausted first, small completed
}

TEST(Pool, ReturningTenantResumesAtTheActiveBaseline) {
  // The aging rule: a tenant that joins while another has been running
  // enters at the active minimum virtual time -- it shares from now on
  // instead of monopolizing the worker to repay the time it was absent.
  Pool pool(1);
  Gate midway;
  std::mutex mutex;
  std::vector<char> order;
  pool.submit(
      8,
      [&](std::size_t i) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          order.push_back('b');
        }
        if (i == 4) midway.wait();  // five items charged, then park
      },
      nullptr, tenant("busy"));
  midway.await_arrivals(1);
  pool.submit(
      2,
      [&](std::size_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back('i');
      },
      nullptr, tenant("idle"));
  midway.release();
  pool.drain();
  // Tie at the baseline goes to "busy" (smaller tag), then the two
  // tenants alternate: the newcomer does NOT run both items first,
  // which is what a zero-entry (no aging) account would do.
  EXPECT_EQ((std::vector<char>{'b', 'b', 'b', 'b', 'b', 'b', 'i', 'b',
                               'i', 'b'}),
            order);
}

TEST(Pool, UntaggedJobsKeepLowestIdOrderUnderFairShare) {
  // Tag-less jobs all share the "" account, so fair share degenerates
  // to the historical lowest-id-first order -- byte-identical claim
  // sequences with the scheduler on or off (the no-tenants no-change
  // pin for every existing Pool caller).
  for (const bool fair : {true, false}) {
    SCOPED_TRACE(fair ? "fair-share" : "fifo reference");
    Pool pool(PoolOptions{1, fair});
    Gate gate;
    pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
    gate.await_arrivals(1);

    std::mutex mutex;
    std::vector<char> order;
    const auto recorder = [&](char tag) {
      return [&, tag](std::size_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(tag);
      };
    };
    pool.submit(2, recorder('a'), nullptr);
    pool.submit(2, recorder('b'), nullptr);
    pool.submit(2, recorder('c'), nullptr);
    gate.release();
    pool.drain();
    EXPECT_EQ((std::vector<char>{'a', 'a', 'b', 'b', 'c', 'c'}), order);
  }
}

TEST(Pool, StrictClassOrderTrumpsFairShare) {
  // Priorities stay strict: a high-class job runs before a batch job
  // even when the batch tenant's tag sorts first and both accounts sit
  // at the same virtual time. Fair share only arbitrates *within* a
  // class.
  Pool pool(1);
  Gate gate;
  pool.submit(1, [&](std::size_t) { gate.wait(); }, nullptr);
  gate.await_arrivals(1);

  std::mutex mutex;
  std::vector<char> order;
  const auto recorder = [&](char tag) {
    return [&, tag](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };
  pool.submit(2, recorder('a'), nullptr,
              tenant("aaa", 1, Priority::kBatch));
  pool.submit(2, recorder('z'), nullptr,
              tenant("zzz", 1, Priority::kHigh));
  gate.release();
  pool.drain();
  EXPECT_EQ((std::vector<char>{'z', 'z', 'a', 'a'}), order);
}

TEST(Pool, ParallelForIndexCoversAndRethrows) {
  std::atomic<std::size_t> count{0};
  detail::parallel_for_index(17, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 17u);
  EXPECT_THROW(
      detail::parallel_for_index(
          8, 2, [](std::size_t i) { if (i == 3) throw std::logic_error("x"); }),
      std::logic_error);
}

}  // namespace
}  // namespace apcc::sweep
