// Resident Pool semantics: job ids, cross-job scheduling, failure
// cancellation scoped to one job, wait/drain, and the zero-item fast
// path. (run_sweep / run_campaign equivalence is pinned by the sweep
// and campaign differential tests; these cover the pool directly.)
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "sweep/pool.hpp"

namespace apcc::sweep {
namespace {

TEST(Pool, RunsEveryIndexExactlyOnce) {
  Pool pool(4);
  std::mutex mutex;
  std::multiset<std::size_t> seen;
  const auto id = pool.submit(
      100,
      [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(i);
      },
      nullptr);
  pool.wait(id);
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Pool, JobIdsAreUniqueAndFinalizeRunsOnce) {
  Pool pool(2);
  std::atomic<int> finalized{0};
  const auto a = pool.submit(3, [](std::size_t) {}, [&](std::exception_ptr) {
    ++finalized;
  });
  const auto b = pool.submit(3, [](std::size_t) {}, [&](std::exception_ptr) {
    ++finalized;
  });
  EXPECT_NE(a, b);
  pool.drain();
  EXPECT_EQ(finalized.load(), 2);
}

TEST(Pool, SeveralJobsInFlightAllComplete) {
  Pool pool(3);
  std::atomic<std::size_t> items{0};
  std::vector<Pool::JobId> ids;
  for (int j = 0; j < 5; ++j) {
    ids.push_back(pool.submit(
        20, [&](std::size_t) { ++items; }, nullptr));
  }
  for (const auto id : ids) pool.wait(id);
  EXPECT_EQ(items.load(), 100u);
}

TEST(Pool, FailureCancelsOnlyTheFailingJob) {
  Pool pool(2);
  std::atomic<std::size_t> poisoned_ran{0};
  std::atomic<std::size_t> healthy_ran{0};
  std::exception_ptr poisoned_failure;
  std::exception_ptr healthy_failure;
  const auto poisoned = pool.submit(
      50,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("boom");
        ++poisoned_ran;
      },
      [&](std::exception_ptr failure) { poisoned_failure = failure; });
  const auto healthy = pool.submit(
      50, [&](std::size_t) { ++healthy_ran; },
      [&](std::exception_ptr failure) { healthy_failure = failure; });
  pool.wait(poisoned);
  pool.wait(healthy);
  ASSERT_TRUE(poisoned_failure != nullptr);
  EXPECT_THROW(std::rethrow_exception(poisoned_failure), std::runtime_error);
  EXPECT_TRUE(healthy_failure == nullptr);
  EXPECT_EQ(healthy_ran.load(), 50u);  // unaffected by the other job
  EXPECT_LT(poisoned_ran.load(), 50u);  // tail skipped after the throw
}

TEST(Pool, ZeroItemJobFinalizesImmediately) {
  Pool pool(1);
  bool finalized = false;
  const auto id = pool.submit(0, nullptr, [&](std::exception_ptr failure) {
    EXPECT_TRUE(failure == nullptr);
    finalized = true;
  });
  EXPECT_TRUE(finalized);  // synchronous, no pool round trip
  pool.wait(id);  // and wait() on it returns at once
}

TEST(Pool, WaitOnUnknownIdReturns) {
  Pool pool(1);
  pool.wait(12345);  // never issued: must not hang
}

TEST(Pool, DestructorDrainsOutstandingJobs) {
  std::atomic<std::size_t> ran{0};
  {
    Pool pool(2);
    pool.submit(64, [&](std::size_t) { ++ran; }, nullptr);
  }
  EXPECT_EQ(ran.load(), 64u);
}

TEST(Pool, ParallelForIndexCoversAndRethrows) {
  std::atomic<std::size_t> count{0};
  detail::parallel_for_index(17, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 17u);
  EXPECT_THROW(
      detail::parallel_for_index(
          8, 2, [](std::size_t i) { if (i == 3) throw std::logic_error("x"); }),
      std::logic_error);
}

}  // namespace
}  // namespace apcc::sweep
