// Sharded sweep tests: the parallel policy-grid runner must be
// byte-identical to the sequential grid, regardless of worker count,
// and its sink/exception plumbing must behave.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/system.hpp"
#include "support/assert.hpp"
#include "sweep/sweep.hpp"
#include "workloads/suite.hpp"

namespace apcc::sweep {
namespace {

const core::CodeCompressionSystem& system_under_test() {
  static const auto* system = new core::CodeCompressionSystem(
      core::CodeCompressionSystem::from_workload(
          workloads::make_workload(workloads::WorkloadKind::kGsmLike)));
  return *system;
}

/// A mixed grid: every strategy, a k sweep, both budget modes, all
/// victim policies -- enough variety that a sharding bug (dropped task,
/// reordered results, crosstalk through shared state) shows up.
std::vector<SweepTask> mixed_grid() {
  const auto& system = system_under_test();
  std::uint64_t largest = 0;
  for (const auto b : system.default_trace()) {
    largest = std::max(largest, system.cfg().block(b).size_bytes());
  }
  std::vector<SweepTask> tasks;
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    for (const std::uint32_t k : {1u, 4u, 16u}) {
      for (const auto victim :
           {runtime::VictimPolicy::kLru, runtime::VictimPolicy::kMru}) {
        for (const bool tight : {false, true}) {
          SweepTask task;
          task.config = system.engine_config();
          task.config.policy.strategy = strategy;
          task.config.policy.compress_k = k;
          task.config.policy.predecompress_k = 2;
          task.config.policy.victim_policy = victim;
          if (tight) task.config.policy.memory_budget = largest * 3 + 32;
          task.label = std::string(runtime::strategy_name(strategy)) + "/k" +
                       std::to_string(k) +
                       runtime::victim_policy_name(victim) +
                       (tight ? "/tight" : "/unbounded");
          tasks.push_back(std::move(task));
        }
      }
    }
  }
  return tasks;
}

void expect_identical(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.label, b.label);
  const sim::RunResult& x = a.result;
  const sim::RunResult& y = b.result;
  EXPECT_EQ(x.total_cycles, y.total_cycles);
  EXPECT_EQ(x.baseline_cycles, y.baseline_cycles);
  EXPECT_EQ(x.busy_cycles, y.busy_cycles);
  EXPECT_EQ(x.stall_cycles, y.stall_cycles);
  EXPECT_EQ(x.exception_cycles, y.exception_cycles);
  EXPECT_EQ(x.critical_decompress_cycles, y.critical_decompress_cycles);
  EXPECT_EQ(x.patch_cycles, y.patch_cycles);
  EXPECT_EQ(x.block_entries, y.block_entries);
  EXPECT_EQ(x.exceptions, y.exceptions);
  EXPECT_EQ(x.demand_decompressions, y.demand_decompressions);
  EXPECT_EQ(x.predecompressions, y.predecompressions);
  EXPECT_EQ(x.predecompress_hits, y.predecompress_hits);
  EXPECT_EQ(x.predecompress_partial, y.predecompress_partial);
  EXPECT_EQ(x.wasted_predecompressions, y.wasted_predecompressions);
  EXPECT_EQ(x.deletions, y.deletions);
  EXPECT_EQ(x.evictions, y.evictions);
  EXPECT_EQ(x.patches, y.patches);
  EXPECT_EQ(x.unpatches, y.unpatches);
  EXPECT_EQ(x.dropped_requests, y.dropped_requests);
  EXPECT_EQ(x.decomp_helper_busy_cycles, y.decomp_helper_busy_cycles);
  EXPECT_EQ(x.comp_helper_busy_cycles, y.comp_helper_busy_cycles);
  EXPECT_EQ(x.original_image_bytes, y.original_image_bytes);
  EXPECT_EQ(x.compressed_area_bytes, y.compressed_area_bytes);
  EXPECT_EQ(x.peak_occupancy_bytes, y.peak_occupancy_bytes);
  EXPECT_EQ(x.avg_occupancy_bytes, y.avg_occupancy_bytes);
  EXPECT_EQ(x.codec_ratio, y.codec_ratio);
}

TEST(Sweep, ParallelIdenticalToSequential) {
  const auto tasks = mixed_grid();
  SweepOptions sequential;
  sequential.workers = 1;
  const auto expected = system_under_test().run_sweep(tasks, sequential);
  ASSERT_EQ(expected.size(), tasks.size());

  for (const unsigned workers : {2u, 4u, 8u}) {
    SweepOptions options;
    options.workers = workers;
    const auto got = system_under_test().run_sweep(tasks, options);
    ASSERT_EQ(got.size(), expected.size()) << workers << " workers";
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(expected[i], got[i]);
    }
  }
}

TEST(Sweep, BatchedIdenticalToSequential) {
  // Lockstep batching is a scheduling-granularity knob, never a results
  // knob: every (batch width, worker count) combination must reproduce
  // the sequential per-engine sweep byte-for-byte. 36 tasks with batch
  // 16 also exercises the non-dividing tail chunk (16 + 16 + 4).
  const auto tasks = mixed_grid();
  SweepOptions sequential;
  sequential.workers = 1;
  const auto expected = system_under_test().run_sweep(tasks, sequential);
  ASSERT_EQ(expected.size(), tasks.size());

  for (const std::uint32_t batch : {1u, 4u, 16u}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      SCOPED_TRACE("batch " + std::to_string(batch) + " x " +
                   std::to_string(workers) + " workers");
      SweepOptions options;
      options.workers = workers;
      options.batch_cells = batch;
      const auto got = system_under_test().run_sweep(tasks, options);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_identical(expected[i], got[i]);
      }
    }
  }
}

TEST(Sweep, BatchWiderThanGridIsOneChunk) {
  auto tasks = mixed_grid();
  tasks.resize(5);
  SweepOptions sequential;
  sequential.workers = 1;
  const auto expected = system_under_test().run_sweep(tasks, sequential);
  SweepOptions options;
  options.workers = 4;
  options.batch_cells = 64;
  const auto got = system_under_test().run_sweep(tasks, options);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_identical(expected[i], got[i]);
  }
}

TEST(Sweep, OutcomesComeBackInTaskOrder) {
  const auto tasks = mixed_grid();
  SweepOptions options;
  options.workers = 4;
  const auto outcomes = system_under_test().run_sweep(tasks, options);
  ASSERT_EQ(outcomes.size(), tasks.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].label, tasks[i].label);
  }
}

TEST(Sweep, EmptyGridIsEmpty) {
  EXPECT_TRUE(system_under_test().run_sweep({}).empty());
}

TEST(Sweep, MoreWorkersThanTasks) {
  auto tasks = mixed_grid();
  tasks.resize(3);
  SweepOptions options;
  options.workers = 16;
  const auto outcomes = system_under_test().run_sweep(tasks, options);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
  }
}

TEST(Sweep, ResolveWorkersClampsToTasks) {
  SweepOptions options;
  options.workers = 8;
  EXPECT_EQ(resolve_workers(options, 3), 3u);
  EXPECT_EQ(resolve_workers(options, 100), 8u);
  options.workers = 0;
  EXPECT_GE(resolve_workers(options, 100), 1u);
  EXPECT_EQ(resolve_workers(options, 0), 1u);
}

TEST(Sweep, ResolveWorkersNeverResolvesToZero) {
  // workers == 0 defers to std::thread::hardware_concurrency(), which
  // the standard allows to return 0 ("not computable"); the resolver
  // must clamp that to one worker, never zero -- a zero-worker pool
  // would run nothing and hang the caller's expectations (and the
  // 1-vCPU CI box is exactly where concurrency detection gets flaky).
  SweepOptions auto_workers;
  auto_workers.workers = 0;
  for (const std::size_t tasks : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}}) {
    const unsigned resolved = resolve_workers(auto_workers, tasks);
    EXPECT_GE(resolved, 1u) << tasks << " tasks";
    EXPECT_LE(resolved, tasks) << tasks << " tasks";
  }
  EXPECT_EQ(resolve_workers(auto_workers, 0), 1u);
}

TEST(Sweep, WorkerFailureRethrownOnCaller) {
  auto tasks = mixed_grid();
  ASSERT_GE(tasks.size(), 4u);
  // A budget smaller than any executed block: the engine's placement
  // loop finds no victim and no in-flight completion, and throws.
  tasks[2].config.policy.memory_budget = 1;
  for (const unsigned workers : {1u, 4u}) {
    SweepOptions options;
    options.workers = workers;
    EXPECT_THROW(
        { (void)system_under_test().run_sweep(tasks, options); },
        apcc::CheckError)
        << workers << " workers";
  }
}

TEST(Sweep, ReferenceAndMemoizedEnginesAgreeUnderSharding) {
  // The sweep is also how the reference/memoized differential scales
  // out: the same grid with both debug flags on must match the indexed
  // engines task for task.
  auto tasks = mixed_grid();
  tasks.resize(12);
  auto reference_tasks = tasks;
  for (auto& t : reference_tasks) {
    t.config.reference_scans = true;
    t.config.reference_frontiers = true;
  }
  SweepOptions options;
  options.workers = 4;
  const auto fast = system_under_test().run_sweep(tasks, options);
  const auto ref = system_under_test().run_sweep(reference_tasks, options);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    expect_identical(ref[i], fast[i]);
  }
}

TEST(ResultSinkTest, SortsByIndexAndDrains) {
  ResultSink sink;
  for (const std::size_t i : {3u, 0u, 2u, 1u}) {
    SweepOutcome o;
    o.index = i;
    o.label = "t" + std::to_string(i);
    sink.push(std::move(o));
  }
  EXPECT_EQ(sink.size(), 4u);
  const auto sorted = sink.take_sorted();
  ASSERT_EQ(sorted.size(), 4u);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].index, i);
    EXPECT_EQ(sorted[i].label, "t" + std::to_string(i));
  }
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.take_sorted().empty());
}

TEST(ResultSinkTest, ConcurrentOutOfOrderPushesDrainSorted) {
  // The campaign/sweep pools push from many workers in whatever order
  // tasks finish; the sink must drain to task order regardless. Each
  // thread pushes its stripe of indexes *backwards* so the sink sees
  // heavy intra- and inter-thread disorder.
  constexpr std::size_t kPerThread = 64;
  constexpr unsigned kThreads = 4;
  ResultSink sink;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (std::size_t i = kPerThread; i-- > 0;) {
        SweepOutcome o;
        o.index = t * kPerThread + i;
        o.label = "t" + std::to_string(o.index);
        sink.push(std::move(o));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(sink.size(), std::size_t{kThreads} * kPerThread);
  const auto sorted = sink.take_sorted();
  ASSERT_EQ(sorted.size(), std::size_t{kThreads} * kPerThread);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].index, i);
    EXPECT_EQ(sorted[i].label, "t" + std::to_string(i));
  }
}

}  // namespace
}  // namespace apcc::sweep
