// RecordFramer differentials: a wire stream fed to the framer in
// chunks of ANY size -- one byte at a time, odd sizes, whole-stream --
// must yield exactly the records serving::wire::RecordReader cuts from
// the same bytes in one pass (same text, same absolute first_line,
// same header kind). Plus the framing error surface the socket path
// adds: garbage between records, oversized lines/records, and streams
// truncated mid-line or mid-record at finish().
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "net/framer.hpp"
#include "serving/wire.hpp"

namespace apcc::net {
namespace {

using serving::wire::RawRecord;
using serving::wire::RecordReader;
using serving::wire::WireError;

/// A small but representative stream: records separated by blank and
/// comment lines, both header kinds, comments *inside* a record.
std::string sample_stream() {
  std::string text;
  text += "# leading comment\n\n";
  text += serving::wire::kJobHeader + "\n";
  text += "kind run\n";
  text += "workload w-one\n";
  text += "end\n";
  text += "\n\n# separator\n";
  text += serving::wire::kResultHeader + "\n";
  text += "job 1\n";
  text += "status ok\n";
  text += "# a comment inside the record\n";
  text += "kind run\n";
  text += "end\n";
  text += serving::wire::kJobHeader + "\n";
  text += "kind sweep\n";
  text += "workload w-two\n";
  text += "task label=a strategy=on-demand kc=1 kd=1\n";
  text += "end\n";
  return text;
}

/// Reference: one whole-stream RecordReader pass.
std::vector<RawRecord> read_reference(const std::string& text) {
  std::istringstream in(text);
  RecordReader reader(in);
  std::vector<RawRecord> records;
  while (auto record = reader.next()) records.push_back(*record);
  return records;
}

/// Framer under test: feed `text` in `chunk`-sized pieces, draining
/// next() after every feed (records may complete mid-stream).
std::vector<RawRecord> read_chunked(const std::string& text,
                                    std::size_t chunk) {
  RecordFramer framer;
  std::vector<RawRecord> records;
  for (std::size_t i = 0; i < text.size(); i += chunk) {
    framer.feed(std::string_view(text).substr(i, chunk));
    while (auto record = framer.next()) records.push_back(*record);
  }
  framer.finish();
  while (auto record = framer.next()) records.push_back(*record);
  return records;
}

void expect_same(const std::vector<RawRecord>& want,
                 const std::vector<RawRecord>& got) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(got[i].text, want[i].text);
    EXPECT_EQ(got[i].first_line, want[i].first_line);
    EXPECT_EQ(got[i].is_result, want[i].is_result);
  }
}

TEST(RecordFramer, AnyChunkingMatchesWholeStreamRecordReader) {
  const std::string text = sample_stream();
  const auto want = read_reference(text);
  ASSERT_EQ(want.size(), 3u);
  EXPECT_FALSE(want[0].is_result);
  EXPECT_TRUE(want[1].is_result);
  // 1 hits every byte boundary; the larger sizes hit misaligned line
  // splits; text.size() is the single-feed degenerate case.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{7},
                                  std::size_t{64}, text.size()}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    expect_same(want, read_chunked(text, chunk));
  }
}

TEST(RecordFramer, RecordsBecomeAvailableAsSoonAsTheirEndArrives) {
  // Streaming, not batching: after feeding exactly one record's bytes
  // the framer must hand it over -- it may not wait for more input.
  const std::string first =
      serving::wire::kJobHeader + "\nkind run\nworkload w\nend\n";
  RecordFramer framer;
  framer.feed(first);
  const auto record = framer.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(record->is_result);
  EXPECT_EQ(record->first_line, 1u);
  EXPECT_FALSE(framer.next().has_value());  // and then waits for more
}

TEST(RecordFramer, GarbageBetweenRecordsThrowsWithAbsoluteLine) {
  RecordFramer framer;
  framer.feed(serving::wire::kJobHeader + "\nkind run\nworkload w\nend\n");
  ASSERT_TRUE(framer.next().has_value());
  framer.feed("# fine\nnot a header\n");
  try {
    (void)framer.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.line(), 6u);  // 4 record lines + 1 comment + the garbage
    EXPECT_EQ(e.snippet(), "not a header");
  }
}

TEST(RecordFramer, SecondRecordKeepsAbsoluteLineNumbers) {
  // The rebasing contract: a parse error in record N points at the
  // connection-absolute line, not line k of the record's own slice.
  RecordFramer framer;
  framer.feed(serving::wire::kJobHeader + "\nkind run\nworkload w\nend\n");
  ASSERT_TRUE(framer.next().has_value());
  framer.feed("\n" + serving::wire::kJobHeader + "\nkind run\nend\n");
  const auto second = framer.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first_line, 6u);  // blank line 5, header line 6
  try {
    (void)serving::wire::parse_job(second->text, second->first_line);
    FAIL() << "expected WireError (kind run needs a workload)";
  } catch (const WireError& e) {
    EXPECT_GE(e.line(), 6u);
  }
}

TEST(RecordFramer, TruncatedRecordThrowsAtFinish) {
  RecordFramer framer;
  framer.feed(serving::wire::kJobHeader + "\nkind run\n");
  EXPECT_FALSE(framer.next().has_value());
  framer.finish();
  EXPECT_THROW((void)framer.next(), WireError);
}

TEST(RecordFramer, UnterminatedLastLineThrowsAtFinish) {
  RecordFramer framer;
  framer.feed("# a comment with no trailing newline");
  EXPECT_FALSE(framer.next().has_value());
  framer.finish();
  EXPECT_THROW((void)framer.next(), WireError);
}

TEST(RecordFramer, CleanEofYieldsNulloptForever) {
  RecordFramer framer;
  framer.feed(serving::wire::kJobHeader + "\nkind run\nworkload w\nend\n");
  framer.feed("# trailing comment\n\n");
  ASSERT_TRUE(framer.next().has_value());
  framer.finish();
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_FALSE(framer.next().has_value());
}

TEST(RecordFramer, FinishBeforeDrainingStillYieldsBufferedRecords) {
  // finish() marks the stream; complete records already buffered must
  // still come out before the (clean, here) EOF.
  RecordFramer framer;
  framer.feed(serving::wire::kJobHeader + "\nkind run\nworkload w\nend\n");
  framer.finish();
  EXPECT_TRUE(framer.next().has_value());
  EXPECT_FALSE(framer.next().has_value());
}

TEST(RecordFramer, OversizedRecordThrows) {
  FramerOptions options;
  options.max_record_bytes = 64;
  RecordFramer framer(options);
  framer.feed(serving::wire::kJobHeader + "\n");
  std::string filler = "# ";
  filler.append(80, 'x');
  framer.feed(filler + "\n");
  EXPECT_THROW((void)framer.next(), WireError);
}

TEST(RecordFramer, OversizedUnterminatedLineThrowsWithoutNewline) {
  // A peer streaming an endless line must be cut off at the bound, not
  // buffered forever waiting for '\n'.
  FramerOptions options;
  options.max_record_bytes = 64;
  RecordFramer framer(options);
  framer.feed(std::string(80, 'x'));  // no newline anywhere
  EXPECT_THROW((void)framer.next(), WireError);
}

}  // namespace
}  // namespace apcc::net
