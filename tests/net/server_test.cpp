// net::Server loopback tests: real sockets, in-process Service. Each
// test spins the server's IO loop on a helper thread, connects with
// plain blocking client sockets, and speaks the stdin wire protocol
// over TCP -- pinning the per-session contracts (submission-order
// results, tag inheritance, record-level errors as records,
// session-fatal framing errors, admission rejections as structured
// statuses) and the graceful drain over live sockets. (The TSan CI job
// runs this binary: one IO thread + pool workers + test threads.)
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "serving/service.hpp"
#include "serving/wire.hpp"
#include "workloads/suite.hpp"

namespace apcc::net {
namespace {

using serving::JobStatus;
using serving::wire::ResultRecord;

/// A Service with the CRC-like test workload registered under its
/// suite name, plus a Server on an ephemeral loopback port whose IO
/// loop runs on a helper thread until the fixture is torn down.
struct LoopbackFixture {
  explicit LoopbackFixture(serving::ServiceOptions service_options = {},
                           ServerOptions server_options = {})
      : service(std::move(service_options)) {
    (void)service.register_workload(
        workloads::make_workload(workloads::WorkloadKind::kCrcLike));
    server.emplace(service, std::move(server_options));
    io = std::thread([this] { server->run(); });
  }

  ~LoopbackFixture() {
    server->request_stop();
    io.join();
  }

  serving::Service service;
  std::optional<Server> server;
  std::thread io;
};

void send_all(const Fd& fd, std::string_view text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd.get(), text.data() + sent, text.size() - sent, 0);
    ASSERT_GT(n, 0) << "send failed";
    sent += static_cast<std::size_t>(n);
  }
}

/// Read until the server closes the connection.
std::string read_to_eof(const Fd& fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

/// Read until `records` complete result records have arrived (without
/// requiring the server to close -- for tests that keep the write side
/// open).
std::string read_records(const Fd& fd, std::size_t records) {
  std::string out;
  char buffer[4096];
  const auto count_ends = [](const std::string& text) {
    std::size_t count = 0;
    for (std::size_t pos = text.find("\nend\n"); pos != std::string::npos;
         pos = text.find("\nend\n", pos + 5)) {
      ++count;
    }
    return count;
  };
  while (count_ends(out) < records) {
    const ssize_t n = ::recv(fd.get(), buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

std::vector<ResultRecord> parse_results(const std::string& text) {
  std::istringstream in(text);
  serving::wire::RecordReader reader(in);
  std::vector<ResultRecord> results;
  while (auto record = reader.next()) {
    results.push_back(
        serving::wire::parse_result(record->text, record->first_line));
  }
  return results;
}

std::string run_job(const std::string& extra = {}) {
  return serving::wire::kJobHeader + "\nkind run\n" + extra +
         "workload crc-like\nend\n";
}

/// Send `text`, half-close the write side (the polite client EOF), and
/// return everything the server says before closing.
std::string round_trip(std::uint16_t port, const std::string& text) {
  const Fd client = connect_tcp("127.0.0.1", port);
  send_all(client, text);
  ::shutdown(client.get(), SHUT_WR);
  return read_to_eof(client);
}

TEST(NetServer, RoundTripsOneJobWithTheSessionTag) {
  LoopbackFixture fx;
  const auto results =
      parse_results(round_trip(fx.server->port(), run_job()));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].job, 1u);
  EXPECT_EQ(results[0].client, "conn-1");  // inherited, echoed back
  ASSERT_EQ(results[0].status, JobStatus::kOk);
  ASSERT_EQ(results[0].result.kind, serving::JobKind::kRun);
  // Byte-identity with the direct path survives the socket round trip.
  const auto direct = core::CodeCompressionSystem::from_workload(
                          workloads::make_workload(
                              workloads::WorkloadKind::kCrcLike))
                          .run();
  EXPECT_EQ(results[0].result.run.total_cycles, direct.total_cycles);
  EXPECT_EQ(results[0].result.run.compressed_area_bytes,
            direct.compressed_area_bytes);
}

TEST(NetServer, ResultsComeBackInSubmissionOrder) {
  serving::ServiceOptions options;
  options.workers = 4;
  LoopbackFixture fx(options);
  const auto results = parse_results(
      round_trip(fx.server->port(), run_job() + run_job() + run_job()));
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].job, i + 1);  // per-session order, not retire order
    EXPECT_EQ(results[i].status, JobStatus::kOk);
    EXPECT_EQ(results[i].client, "conn-1");
  }
}

TEST(NetServer, ExplicitClientTagOverridesTheSessionTag) {
  LoopbackFixture fx;
  const auto results = parse_results(round_trip(
      fx.server->port(), run_job("client tenant-a\n") + run_job()));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].client, "tenant-a");  // the record's own tag
  EXPECT_EQ(results[1].client, "conn-1");    // inheritance is per record
}

TEST(NetServer, RecordLevelErrorsKeepTheSessionAlive) {
  LoopbackFixture fx;
  const std::string bad = serving::wire::kJobHeader +
                          "\nkind run\nworkload no-such-workload\nend\n";
  const auto results =
      parse_results(round_trip(fx.server->port(), bad + run_job()));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].job, 1u);
  EXPECT_EQ(results[0].status, JobStatus::kError);
  EXPECT_NE(results[0].error.find("no-such-workload"), std::string::npos)
      << results[0].error;
  EXPECT_EQ(results[1].job, 2u);  // the session kept going
  EXPECT_EQ(results[1].status, JobStatus::kOk);
}

TEST(NetServer, FramingErrorIsFatalToTheSessionNotTheServer) {
  LoopbackFixture fx;
  // A valid job, then garbage where a header must be. No client-side
  // half-close: the server itself must give up on the session after
  // delivering job 1's result and the final framing-error record.
  const Fd client = connect_tcp("127.0.0.1", fx.server->port());
  send_all(client, run_job() + "this is not a record header\n");
  const auto results = parse_results(read_to_eof(client));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].job, 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].job, 2u);
  EXPECT_EQ(results[1].status, JobStatus::kError);
  EXPECT_NE(results[1].error.find("record header"), std::string::npos)
      << results[1].error;

  // The server survives for fresh connections (with fresh tags).
  const auto after =
      parse_results(round_trip(fx.server->port(), run_job()));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].status, JobStatus::kOk);
  EXPECT_EQ(after[0].client, "conn-2");
}

TEST(NetServer, PerClientAdmissionLimitRejectsAsAStructuredRecord) {
  // One worker, one live job allowed per client: a long sweep occupies
  // the session's slot, so the run job right behind it must resolve
  // `status rejected` -- a record in its submission slot, not a throw,
  // not a dropped connection.
  serving::ServiceOptions options;
  options.workers = 1;
  options.limits.max_queued_per_client = 1;
  LoopbackFixture fx(std::move(options));
  const std::string sweep = serving::wire::kJobHeader +
                            "\nkind sweep\nworkload crc-like\n"
                            "grid strategy-k\nend\n";
  const auto results =
      parse_results(round_trip(fx.server->port(), sweep + run_job()));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].job, 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[1].job, 2u);
  EXPECT_EQ(results[1].status, JobStatus::kRejected);
  EXPECT_NE(results[1].error.find("limit"), std::string::npos)
      << results[1].error;
}

TEST(NetServer, SessionsInterleaveWithIndependentSequences) {
  serving::ServiceOptions options;
  options.workers = 2;
  LoopbackFixture fx(options);
  // Both connections live at once, each with its own tag and its own
  // job numbering starting at 1.
  const Fd a = connect_tcp("127.0.0.1", fx.server->port());
  const Fd b = connect_tcp("127.0.0.1", fx.server->port());
  send_all(a, run_job() + run_job());
  send_all(b, run_job());
  ::shutdown(a.get(), SHUT_WR);
  ::shutdown(b.get(), SHUT_WR);
  const auto results_a = parse_results(read_to_eof(a));
  const auto results_b = parse_results(read_to_eof(b));
  ASSERT_EQ(results_a.size(), 2u);
  ASSERT_EQ(results_b.size(), 1u);
  EXPECT_EQ(results_a[0].job, 1u);
  EXPECT_EQ(results_a[1].job, 2u);
  EXPECT_EQ(results_b[0].job, 1u);
  // Accept order follows connect order on loopback: stable tags.
  EXPECT_EQ(results_a[0].client, "conn-1");
  EXPECT_EQ(results_b[0].client, "conn-2");
  for (const auto* results : {&results_a, &results_b}) {
    for (const auto& record : *results) {
      EXPECT_EQ(record.status, JobStatus::kOk);
    }
  }
}

TEST(NetServer, RequestStopDrainsLiveSocketsThenCloses) {
  LoopbackFixture fx;
  // The client never closes its write side: the *server's* drain is
  // what ends the session. The accepted job still gets its one record
  // before the socket closes.
  const Fd client = connect_tcp("127.0.0.1", fx.server->port());
  send_all(client, run_job());
  const std::string first = read_records(client, 1);  // result delivered
  fx.server->request_stop();
  const std::string rest = read_to_eof(client);  // drain closes the fd
  const auto results = parse_results(first + rest);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].job, 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  // The fixture's destructor joins the IO thread: it would hang (and
  // time the test out) if run() had not returned from this drain.
}

TEST(NetServer, EphemeralPortIsReportedAndAddressFormatted) {
  LoopbackFixture fx;
  EXPECT_NE(fx.server->port(), 0u);
  EXPECT_EQ(fx.server->address(),
            "127.0.0.1:" + std::to_string(fx.server->port()));
}

}  // namespace
}  // namespace apcc::net
