// Program image accessor tests: word/byte views, functions, labels,
// and range checking.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/program.hpp"
#include "support/assert.hpp"

namespace apcc::isa {
namespace {

Program sample() {
  return assemble(
      ".entry main\n"
      ".func helper\n"
      "  add r1, r2, r3\n"
      "  ret\n"
      ".func main\n"
      "start:\n"
      "  addi r1, r0, 1\n"
      "  jal helper\n"
      "  halt\n");
}

TEST(Program, WordAndInstructionAccess) {
  const Program p = sample();
  ASSERT_EQ(p.word_count(), 5u);
  EXPECT_EQ(p.instruction(0).opcode, Opcode::kAdd);
  EXPECT_EQ(p.instruction(4).opcode, Opcode::kHalt);
  EXPECT_THROW((void)p.word(5), apcc::CheckError);
  EXPECT_THROW((void)p.instruction(99), apcc::CheckError);
}

TEST(Program, SizeBytes) {
  EXPECT_EQ(sample().size_bytes(), 20u);
}

TEST(Program, EntryPointsAtMain) {
  const Program p = sample();
  EXPECT_EQ(p.entry_word(), 2u);
}

TEST(Program, FunctionContainment) {
  const Program p = sample();
  EXPECT_EQ(p.function_containing(0)->name, "helper");
  EXPECT_EQ(p.function_containing(1)->name, "helper");
  EXPECT_EQ(p.function_containing(2)->name, "main");
  EXPECT_EQ(p.function_containing(4)->name, "main");
}

TEST(Program, LabelLookup) {
  const Program p = sample();
  EXPECT_EQ(p.label("start").value(), 2u);
  EXPECT_EQ(p.label("main").value(), 2u);
  EXPECT_EQ(p.label("helper").value(), 0u);
  EXPECT_FALSE(p.label("nope").has_value());
}

TEST(Program, LabelAtWord) {
  const Program p = sample();
  const auto at2 = p.label_at(2);
  ASSERT_TRUE(at2.has_value());
  EXPECT_TRUE(*at2 == "start" || *at2 == "main");
  EXPECT_FALSE(p.label_at(1).has_value());
}

TEST(Program, ByteRangeExtraction) {
  const Program p = sample();
  const auto all = p.bytes();
  EXPECT_EQ(all.size(), 20u);
  const auto middle = p.bytes(1, 2);
  EXPECT_EQ(middle.size(), 8u);
  // The slice must match the corresponding whole-image bytes.
  for (std::size_t i = 0; i < middle.size(); ++i) {
    EXPECT_EQ(middle[i], all[4 + i]);
  }
  EXPECT_THROW((void)p.bytes(4, 2), apcc::CheckError);
}

TEST(Program, LittleEndianByteOrder) {
  const Program p = sample();
  const auto bytes = p.bytes(0, 1);
  const std::uint32_t w = p.word(0);
  EXPECT_EQ(bytes[0], w & 0xffu);
  EXPECT_EQ(bytes[1], (w >> 8) & 0xffu);
  EXPECT_EQ(bytes[2], (w >> 16) & 0xffu);
  EXPECT_EQ(bytes[3], (w >> 24) & 0xffu);
}

TEST(Program, FunctionEndWord) {
  const Program p = sample();
  const auto& helper = p.functions().front();
  EXPECT_EQ(helper.end_word(), helper.first_word + helper.word_count);
}

TEST(Program, ConstructionValidatesExtents) {
  std::vector<FunctionInfo> bad_functions = {{"f", 0, 10}};
  EXPECT_THROW(
      Program({encode(Instruction{Opcode::kHalt, 0, 0, 0, 0})},
              std::move(bad_functions), {}, 0),
      apcc::CheckError);
}

}  // namespace
}  // namespace apcc::isa
