// Functional interpreter tests: ALU semantics, memory, control flow,
// calls, tracing, and stop conditions.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "support/assert.hpp"

namespace apcc::isa {
namespace {

TEST(Interpreter, ArithmeticChain) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 6\n"
      "  addi r2, r0, 7\n"
      "  mul r3, r1, r2\n"
      "  sub r4, r3, r1\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), 42);
  EXPECT_EQ(interp.reg(4), 36);
}

TEST(Interpreter, ZeroRegisterIsImmutable) {
  const Program p = assemble(".func main\n  addi r0, r0, 99\n  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(0), 0);
}

TEST(Interpreter, LogicalAndShifts) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 12\n"   // 0b1100
      "  andi r2, r1, 10\n"   // 0b1000 = 8
      "  ori r3, r1, 3\n"     // 0b1111 = 15
      "  xori r4, r1, 5\n"    // 0b1001 = 9
      "  slli r5, r1, 2\n"    // 48
      "  srli r6, r1, 2\n"    // 3
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(2), 8);
  EXPECT_EQ(interp.reg(3), 15);
  EXPECT_EQ(interp.reg(4), 9);
  EXPECT_EQ(interp.reg(5), 48);
  EXPECT_EQ(interp.reg(6), 3);
}

TEST(Interpreter, SignedComparisonAndSra) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, -8\n"
      "  addi r2, r0, 2\n"
      "  slt r3, r1, r2\n"   // -8 < 2 -> 1
      "  sra r4, r1, r2\n"   // -8 >> 2 arithmetic = -2
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), 1);
  EXPECT_EQ(interp.reg(4), -2);
}

TEST(Interpreter, DivisionByZeroIsZero) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 10\n"
      "  div r3, r1, r0\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), 0);
}

TEST(Interpreter, WordMemoryRoundTrip) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 1000\n"
      "  addi r2, r0, -123\n"
      "  sw r2, 4(r1)\n"
      "  lw r3, 4(r1)\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), -123);
}

TEST(Interpreter, ByteMemoryRoundTrip) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 2000\n"
      "  addi r2, r0, 255\n"
      "  sb r2, 0(r1)\n"
      "  lb r3, 0(r1)\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), 255);
}

TEST(Interpreter, OutOfBoundsAccessThrows) {
  const Program p = assemble(
      ".func main\n"
      "  lui r1, 15\n"          // big address
      "  lw r2, 0(r1)\n"
      "  halt\n");
  Interpreter interp(p);
  EXPECT_THROW((void)interp.run(), CheckError);
}

TEST(Interpreter, CountedLoopRunsExactly) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 10\n"
      "  addi r2, r0, 0\n"
      "loop:\n"
      "  addi r2, r2, 3\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(2), 30);
}

TEST(Interpreter, CallAndReturn) {
  const Program p = assemble(
      ".entry main\n"
      ".func double_it\n"
      "  add r2, r1, r1\n"
      "  ret\n"
      ".func main\n"
      "  addi r1, r0, 21\n"
      "  jal double_it\n"
      "  add r3, r2, r0\n"
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(3), 42);
}

TEST(Interpreter, JrJumpsThroughRegister) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 3\n"
      "  jr r1\n"
      "  addi r2, r0, 99\n"  // skipped
      "  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(2), 0);
}

TEST(Interpreter, StepLimitStops) {
  const Program p = assemble(".func main\nspin:\n  jmp spin\n");
  InterpreterOptions opts;
  opts.max_steps = 100;
  Interpreter interp(p, opts);
  const ExecResult r = interp.run();
  EXPECT_EQ(r.stop, StopReason::kStepLimit);
  EXPECT_EQ(r.steps, 100u);
}

TEST(Interpreter, BadPcStops) {
  // jr to an address beyond the image.
  const Program p = assemble(".func main\n  addi r1, r0, 500\n  jr r1\n");
  Interpreter interp(p);
  const ExecResult r = interp.run();
  EXPECT_EQ(r.stop, StopReason::kBadPc);
}

TEST(Interpreter, TraceHookSeesEveryPc) {
  const Program p = assemble(
      ".func main\n"
      "  addi r1, r0, 2\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  std::vector<std::uint32_t> pcs;
  Interpreter interp(p);
  interp.set_trace_hook([&pcs](std::uint32_t pc) { pcs.push_back(pc); });
  (void)interp.run();
  const std::vector<std::uint32_t> expected = {0, 1, 2, 1, 2, 3};
  EXPECT_EQ(pcs, expected);
}

TEST(Interpreter, StepByStepMatchesRun) {
  const Program p = assemble(
      ".func main\n  addi r1, r0, 1\n  addi r1, r1, 1\n  halt\n");
  Interpreter a(p);
  while (a.step()) {
  }
  Interpreter b(p);
  (void)b.run();
  EXPECT_EQ(a.reg(1), b.reg(1));
  EXPECT_EQ(a.reg(1), 2);
}

TEST(Interpreter, StackPointerInitialised) {
  const Program p = assemble(".func main\n  halt\n");
  Interpreter interp(p);
  EXPECT_GT(interp.reg(kStackRegister), 0);
}

TEST(Interpreter, LuiShiftsBy14) {
  const Program p = assemble(".func main\n  lui r1, 2\n  halt\n");
  Interpreter interp(p);
  (void)interp.run();
  EXPECT_EQ(interp.reg(1), 2 << 14);
}

}  // namespace
}  // namespace apcc::isa
