// Encoder/decoder tests for ERISC-32, including an exhaustive-ish
// round-trip property over all opcodes and operand extremes.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace apcc::isa {
namespace {

TEST(OpcodeInfo, EveryOpcodeHasAMnemonicAndFormat) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const auto& info = opcode_info(static_cast<Opcode>(i));
    EXPECT_FALSE(info.mnemonic.empty()) << "opcode " << i;
  }
}

TEST(OpcodeInfo, MnemonicLookupRoundTrips) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto found = opcode_from_mnemonic(opcode_info(op).mnemonic);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, op);
  }
}

TEST(OpcodeInfo, UnknownMnemonicIsNullopt) {
  EXPECT_FALSE(opcode_from_mnemonic("frobnicate").has_value());
  EXPECT_FALSE(opcode_from_mnemonic("").has_value());
}

TEST(OpcodeInfo, ClassificationFlags) {
  EXPECT_TRUE(opcode_info(Opcode::kBeq).is_branch);
  EXPECT_TRUE(opcode_info(Opcode::kJmp).is_jump);
  EXPECT_TRUE(opcode_info(Opcode::kJal).is_call);
  EXPECT_TRUE(opcode_info(Opcode::kRet).is_return);
  EXPECT_TRUE(opcode_info(Opcode::kLw).is_load);
  EXPECT_TRUE(opcode_info(Opcode::kSw).is_store);
  EXPECT_TRUE(opcode_info(Opcode::kHalt).is_halt);
  EXPECT_FALSE(opcode_info(Opcode::kAdd).is_branch);
}

TEST(Instruction, ControlAndFallThrough) {
  Instruction beq{Opcode::kBeq, 0, 1, 2, 5};
  EXPECT_TRUE(beq.is_control());
  EXPECT_TRUE(beq.can_fall_through());

  Instruction jmp{Opcode::kJmp, 0, 0, 0, 10};
  EXPECT_TRUE(jmp.is_control());
  EXPECT_FALSE(jmp.can_fall_through());

  Instruction jal{Opcode::kJal, 0, 0, 0, 10};
  EXPECT_TRUE(jal.is_control());
  EXPECT_TRUE(jal.can_fall_through()) << "calls resume after return";

  Instruction add{Opcode::kAdd, 1, 2, 3, 0};
  EXPECT_FALSE(add.is_control());
  EXPECT_TRUE(add.can_fall_through());

  Instruction halt{Opcode::kHalt, 0, 0, 0, 0};
  EXPECT_TRUE(halt.is_control());
  EXPECT_FALSE(halt.can_fall_through());
}

TEST(EncodeDecode, RTypeFields) {
  const Instruction in{Opcode::kAdd, 3, 7, 12, 0};
  const Instruction out = decode(encode(in));
  EXPECT_EQ(out, in);
}

TEST(EncodeDecode, ITypeNegativeImmediate) {
  const Instruction in{Opcode::kAddi, 2, 5, 0, -42};
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(EncodeDecode, ITypeImmediateExtremes) {
  for (const std::int32_t imm : {kImmMin, kImmMin + 1, -1, 0, 1, kImmMax}) {
    const Instruction in{Opcode::kXori, 1, 2, 0, imm};
    EXPECT_EQ(decode(encode(in)).imm, imm);
  }
}

TEST(EncodeDecode, BTypeOffsetExtremes) {
  for (const std::int32_t off : {kImmMin, -1, 0, 1, kImmMax}) {
    const Instruction in{Opcode::kBne, 0, 4, 9, off};
    const Instruction out = decode(encode(in));
    EXPECT_EQ(out.imm, off);
    EXPECT_EQ(out.rs1, 4);
    EXPECT_EQ(out.rs2, 9);
  }
}

TEST(EncodeDecode, JTypeTargetExtremes) {
  for (const std::int32_t target :
       {0, 1, static_cast<std::int32_t>(kJumpTargetMax)}) {
    const Instruction in{Opcode::kJal, 0, 0, 0, target};
    EXPECT_EQ(decode(encode(in)).imm, target);
  }
}

TEST(EncodeDecode, ImmediateOutOfRangeThrows) {
  Instruction in{Opcode::kAddi, 0, 0, 0, kImmMax + 1};
  EXPECT_THROW((void)encode(in), CheckError);
  in.imm = kImmMin - 1;
  EXPECT_THROW((void)encode(in), CheckError);
}

TEST(EncodeDecode, JumpTargetOutOfRangeThrows) {
  Instruction in{Opcode::kJmp, 0, 0, 0, -1};
  EXPECT_THROW((void)encode(in), CheckError);
  in.imm = static_cast<std::int32_t>(kJumpTargetMax) + 1;
  EXPECT_THROW((void)encode(in), CheckError);
}

TEST(EncodeDecode, RegisterOutOfRangeThrows) {
  Instruction in{Opcode::kAdd, 16, 0, 0, 0};
  EXPECT_THROW((void)encode(in), CheckError);
}

TEST(EncodeDecode, InvalidOpcodeFieldThrows) {
  const std::uint32_t bad = 0xffffffffu;  // opcode field = 63
  EXPECT_THROW((void)decode(bad), CheckError);
}

TEST(EncodeDecode, NopAndHaltEncodeCleanly) {
  EXPECT_EQ(decode(encode(Instruction{Opcode::kNop, 0, 0, 0, 0})).opcode,
            Opcode::kNop);
  EXPECT_EQ(decode(encode(Instruction{Opcode::kHalt, 0, 0, 0, 0})).opcode,
            Opcode::kHalt);
}

// Property: random valid instructions round-trip through encode/decode.
TEST(EncodeDecode, RandomRoundTripProperty) {
  apcc::Rng rng(2024);
  for (int iter = 0; iter < 2000; ++iter) {
    Instruction in;
    in.opcode = static_cast<Opcode>(rng.next_below(kNumOpcodes));
    const auto& info = opcode_info(in.opcode);
    switch (info.format) {
      case Format::kR:
        in.rd = static_cast<std::uint8_t>(rng.next_below(16));
        in.rs1 = static_cast<std::uint8_t>(rng.next_below(16));
        in.rs2 = static_cast<std::uint8_t>(rng.next_below(16));
        break;
      case Format::kI:
        in.rd = static_cast<std::uint8_t>(rng.next_below(16));
        in.rs1 = static_cast<std::uint8_t>(rng.next_below(16));
        in.imm = static_cast<std::int32_t>(rng.next_in(kImmMin, kImmMax));
        break;
      case Format::kB:
        in.rs1 = static_cast<std::uint8_t>(rng.next_below(16));
        in.rs2 = static_cast<std::uint8_t>(rng.next_below(16));
        in.imm = static_cast<std::int32_t>(rng.next_in(kImmMin, kImmMax));
        break;
      case Format::kJ:
        in.imm = static_cast<std::int32_t>(rng.next_below(kJumpTargetMax + 1));
        break;
      case Format::kNone:
        break;
    }
    EXPECT_EQ(decode(encode(in)), in);
  }
}

}  // namespace
}  // namespace apcc::isa
