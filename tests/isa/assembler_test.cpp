// Assembler tests: syntax, label resolution, directives, error paths,
// and a disassembler sanity pass.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "support/assert.hpp"

namespace apcc::isa {
namespace {

TEST(Assembler, MinimalProgram) {
  const Program p = assemble(".func main\n  halt\n");
  ASSERT_EQ(p.word_count(), 1u);
  EXPECT_EQ(p.instruction(0).opcode, Opcode::kHalt);
  EXPECT_EQ(p.entry_word(), 0u);
}

TEST(Assembler, RTypeOperands) {
  const Program p = assemble(".func f\n  add r1, r2, r3\n  halt\n");
  const Instruction i = p.instruction(0);
  EXPECT_EQ(i.opcode, Opcode::kAdd);
  EXPECT_EQ(i.rd, 1);
  EXPECT_EQ(i.rs1, 2);
  EXPECT_EQ(i.rs2, 3);
}

TEST(Assembler, RegisterAliases) {
  const Program p =
      assemble(".func f\n  add sp, ra, zero\n  halt\n");
  const Instruction i = p.instruction(0);
  EXPECT_EQ(i.rd, kStackRegister);
  EXPECT_EQ(i.rs1, kLinkRegister);
  EXPECT_EQ(i.rs2, kZeroRegister);
}

TEST(Assembler, MemoryOperandSyntax) {
  const Program p = assemble(".func f\n  lw r1, 8(r2)\n  sw r3, -4(r4)\n  halt\n");
  const Instruction lw = p.instruction(0);
  EXPECT_EQ(lw.opcode, Opcode::kLw);
  EXPECT_EQ(lw.rd, 1);
  EXPECT_EQ(lw.rs1, 2);
  EXPECT_EQ(lw.imm, 8);
  const Instruction sw = p.instruction(1);
  EXPECT_EQ(sw.rd, 3);
  EXPECT_EQ(sw.rs1, 4);
  EXPECT_EQ(sw.imm, -4);
}

TEST(Assembler, MemoryOperandWithoutOffset) {
  const Program p = assemble(".func f\n  lw r1, (r2)\n  halt\n");
  EXPECT_EQ(p.instruction(0).imm, 0);
}

TEST(Assembler, BackwardBranchOffset) {
  const Program p = assemble(
      ".func f\n"
      "top:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, top\n"
      "  halt\n");
  // bne at word 1, target word 0: offset = 0 - 1 - 1 = -2.
  EXPECT_EQ(p.instruction(1).imm, -2);
}

TEST(Assembler, ForwardBranchOffset) {
  const Program p = assemble(
      ".func f\n"
      "  beq r1, r2, done\n"
      "  addi r1, r1, 1\n"
      "done:\n"
      "  halt\n");
  // beq at word 0, target word 2: offset = 2 - 0 - 1 = 1.
  EXPECT_EQ(p.instruction(0).imm, 1);
}

TEST(Assembler, JumpTargetsAreAbsolute) {
  const Program p = assemble(
      ".func f\n"
      "  jmp there\n"
      "  nop\n"
      "there:\n"
      "  halt\n");
  EXPECT_EQ(p.instruction(0).imm, 2);
}

TEST(Assembler, NumericBranchAndJumpTargets) {
  const Program p = assemble(".func f\n  beq r0, r0, 1\n  nop\n  jmp 0\n");
  EXPECT_EQ(p.instruction(0).imm, 1);
  EXPECT_EQ(p.instruction(2).imm, 0);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(
      "; leading comment\n"
      ".func f  ; trailing\n"
      "\n"
      "  nop # hash comment\n"
      "  halt\n");
  EXPECT_EQ(p.word_count(), 2u);
}

TEST(Assembler, EntryDirectiveSelectsFunction) {
  const Program p = assemble(
      ".entry main\n"
      ".func helper\n"
      "  ret\n"
      ".func main\n"
      "  halt\n");
  EXPECT_EQ(p.entry_word(), 1u);
}

TEST(Assembler, FunctionExtentsRecorded) {
  const Program p = assemble(
      ".func a\n  nop\n  ret\n"
      ".func b\n  halt\n");
  ASSERT_EQ(p.functions().size(), 2u);
  EXPECT_EQ(p.functions()[0].name, "a");
  EXPECT_EQ(p.functions()[0].first_word, 0u);
  EXPECT_EQ(p.functions()[0].word_count, 2u);
  EXPECT_EQ(p.functions()[1].first_word, 2u);
  EXPECT_EQ(p.functions()[1].word_count, 1u);
  EXPECT_EQ(p.function_containing(1)->name, "a");
  EXPECT_EQ(p.function_containing(2)->name, "b");
}

TEST(Assembler, FunctionNameIsALabel) {
  const Program p = assemble(".func main\n  jal main\n  halt\n");
  EXPECT_EQ(p.instruction(0).imm, 0);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const Program p = assemble(".func f\nstart: nop\n  jmp start\n");
  EXPECT_EQ(p.label("start").value(), 0u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble(".func f\n  nop\n  bogus r1\n");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Assembler, UndefinedLabelThrows) {
  EXPECT_THROW((void)assemble(".func f\n  jmp nowhere\n"), CheckError);
}

TEST(Assembler, DuplicateLabelThrows) {
  EXPECT_THROW((void)assemble(".func f\nx:\n  nop\nx:\n  halt\n"),
               CheckError);
}

TEST(Assembler, WrongOperandCountThrows) {
  EXPECT_THROW((void)assemble(".func f\n  add r1, r2\n"), CheckError);
  EXPECT_THROW((void)assemble(".func f\n  ret r1\n"), CheckError);
}

TEST(Assembler, BadRegisterThrows) {
  EXPECT_THROW((void)assemble(".func f\n  add r1, r99, r2\n"), CheckError);
  EXPECT_THROW((void)assemble(".func f\n  add r1, x2, r2\n"), CheckError);
}

TEST(Assembler, UnknownDirectiveThrows) {
  EXPECT_THROW((void)assemble(".wat\n"), CheckError);
}

TEST(Assembler, BytesAreLittleEndianWords) {
  const Program p = assemble(".func f\n  halt\n");
  const auto bytes = p.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  const std::uint32_t w = p.word(0);
  EXPECT_EQ(bytes[0], w & 0xff);
  EXPECT_EQ(bytes[3], (w >> 24) & 0xff);
}

TEST(Disassembler, RendersOperandsAndTargets) {
  const Program p = assemble(
      ".func f\n"
      "  addi r1, r0, 5\n"
      "  lw r2, 4(r1)\n"
      "loop:\n"
      "  bne r1, r0, loop\n"
      "  halt\n");
  EXPECT_EQ(disassemble(p.instruction(0), 0), "addi r1, r0, 5");
  EXPECT_EQ(disassemble(p.instruction(1), 1), "lw r2, 4(r1)");
  EXPECT_EQ(disassemble(p.instruction(2), 2), "bne r1, r0, @2");
  const std::string listing = disassemble(p);
  EXPECT_NE(listing.find("loop:"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace apcc::isa
