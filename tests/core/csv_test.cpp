// CSV export tests: header, numeric columns, escaping.
#include <gtest/gtest.h>

#include <sstream>

#include "core/csv.hpp"

namespace apcc::core {
namespace {

sim::RunResult sample_result() {
  sim::RunResult r;
  r.total_cycles = 2000;
  r.baseline_cycles = 1000;
  r.busy_cycles = 1000;
  r.peak_occupancy_bytes = 512;
  r.avg_occupancy_bytes = 400.5;
  r.compressed_area_bytes = 300;
  r.original_image_bytes = 800;
  r.codec_ratio = 0.5;
  r.exceptions = 7;
  r.demand_decompressions = 5;
  r.predecompressions = 3;
  r.deletions = 4;
  r.evictions = 1;
  r.stall_cycles = 42;
  return r;
}

TEST(Csv, HeaderPlusOneLinePerRow) {
  const std::string csv =
      to_csv({{"a", sample_result()}, {"b", sample_result()}});
  std::istringstream in(csv);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);
}

TEST(Csv, HeaderNamesColumns) {
  const std::string csv = to_csv({});
  EXPECT_EQ(csv.find("label,total_cycles,baseline_cycles,slowdown"), 0u);
}

TEST(Csv, ValuesInOrder) {
  const std::string csv = to_csv({{"run1", sample_result()}});
  EXPECT_NE(csv.find("run1,2000,1000,2,512,400.5,300,800,0.5,7,5,3,4,1,42"),
            std::string::npos)
      << csv;
}

TEST(Csv, EscapesCommasAndQuotes) {
  const std::string csv = to_csv({{"a,b \"c\"", sample_result()}});
  EXPECT_NE(csv.find("\"a,b \"\"c\"\"\","), std::string::npos) << csv;
}

TEST(Csv, ColumnCountMatchesHeader) {
  const std::string csv = to_csv({{"x", sample_result()}});
  std::istringstream in(csv);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
}

}  // namespace
}  // namespace apcc::core
