// End-to-end CodeCompressionSystem tests on real assembled workloads.
#include <gtest/gtest.h>

#include "cfg/paper_graphs.hpp"
#include "core/report.hpp"
#include "core/system.hpp"

namespace apcc::core {
namespace {

const workloads::Workload& g721() {
  static const workloads::Workload w =
      workloads::make_workload(workloads::WorkloadKind::kG721Like);
  return w;
}

TEST(System, FromWorkloadRunsDefaultTrace) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  const auto r = system.run();
  EXPECT_EQ(r.block_entries, g721().trace.size());
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(System, CompressedImageIsMinimumFootprint) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  EXPECT_LT(system.compressed_image_bytes(), system.original_image_bytes());
}

TEST(System, RunsAreReproducible) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  const auto a = system.run();
  const auto b = system.run();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.peak_occupancy_bytes, b.peak_occupancy_bytes);
  EXPECT_EQ(a.exceptions, b.exceptions);
}

TEST(System, FromCfgNeedsExplicitTrace) {
  cfg::Cfg g = cfg::figure5_cfg();
  const auto system = CodeCompressionSystem::from_cfg(
      std::move(g),
      [](const cfg::BasicBlock& b) {
        return compress::Bytes(b.size_bytes(), 0x42);
      });
  EXPECT_THROW((void)system.run(), apcc::CheckError);
  EXPECT_NO_THROW((void)system.run(cfg::figure5_trace()));
}

TEST(System, PreDecompressionLowersExceptionRate) {
  SystemConfig lazy;
  lazy.policy.strategy = runtime::DecompressionStrategy::kOnDemand;
  const auto lazy_r =
      CodeCompressionSystem::from_workload(g721(), lazy).run();

  SystemConfig pre;
  pre.policy.strategy = runtime::DecompressionStrategy::kPreAll;
  pre.policy.predecompress_k = 3;
  const auto pre_r = CodeCompressionSystem::from_workload(g721(), pre).run();

  EXPECT_LT(pre_r.exception_rate(), lazy_r.exception_rate());
  EXPECT_LT(pre_r.critical_decompress_cycles,
            lazy_r.critical_decompress_cycles);
}

TEST(System, AllStrategiesSaveMemoryOnAverage) {
  // In the memory-tuned configuration (k=1: compress as soon as possible)
  // every decompression strategy must beat the uncompressed image on
  // time-averaged occupancy, even pre-all, which trades the most memory
  // for performance (§4).
  for (const auto strategy : {runtime::DecompressionStrategy::kOnDemand,
                              runtime::DecompressionStrategy::kPreAll,
                              runtime::DecompressionStrategy::kPreSingle}) {
    SystemConfig config;
    // CodePack: pre-decompression needs a decoder fast enough that
    // in-flight copies do not pile up behind a saturated helper.
    config.codec = compress::CodecKind::kCodePack;
    config.policy.strategy = strategy;
    config.policy.compress_k = 1;
    config.policy.predecompress_k = 2;
    const auto r =
        CodeCompressionSystem::from_workload(g721(), config).run();
    EXPECT_GT(r.avg_saving(), 0.0)
        << runtime::strategy_name(strategy)
        << " must use less average memory than the uncompressed image";
  }
}

TEST(System, SlowdownAboveOneForOnDemand) {
  SystemConfig config;
  const auto r = CodeCompressionSystem::from_workload(g721(), config).run();
  EXPECT_GT(r.slowdown(), 1.0);
}

TEST(System, OracleBeatsStaticPredictorOnHits) {
  SystemConfig oracle;
  oracle.policy.strategy = runtime::DecompressionStrategy::kPreSingle;
  oracle.policy.predictor = runtime::PredictorKind::kOracle;
  oracle.policy.predecompress_k = 3;
  const auto oracle_r =
      CodeCompressionSystem::from_workload(g721(), oracle).run();

  SystemConfig st = oracle;
  st.policy.predictor = runtime::PredictorKind::kStatic;
  const auto static_r =
      CodeCompressionSystem::from_workload(g721(), st).run();

  EXPECT_GE(oracle_r.predecompress_hits + oracle_r.predecompress_partial,
            static_r.predecompress_hits + static_r.predecompress_partial)
      << "the oracle is the predictor upper bound";
}

TEST(System, EventSinkReceivesRun) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  std::size_t events = 0;
  (void)system.run_with_events(g721().trace,
                               [&events](const sim::Event&) { ++events; });
  EXPECT_GT(events, g721().trace.size()) << "at least one event per entry";
}

TEST(System, CodecChoiceChangesFootprint) {
  SystemConfig null_codec;
  null_codec.codec = compress::CodecKind::kNull;
  const auto null_sys =
      CodeCompressionSystem::from_workload(g721(), null_codec);

  SystemConfig huff;
  huff.codec = compress::CodecKind::kSharedHuffman;
  const auto huff_sys = CodeCompressionSystem::from_workload(g721(), huff);

  EXPECT_LT(huff_sys.compressed_image_bytes(),
            null_sys.compressed_image_bytes());
}

TEST(Report, ComparisonTableRendersAllRows) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  std::vector<ReportRow> rows;
  rows.push_back({"run-a", system.run()});
  rows.push_back({"run-b", system.run()});
  const std::string table = render_comparison(rows);
  EXPECT_NE(table.find("run-a"), std::string::npos);
  EXPECT_NE(table.find("run-b"), std::string::npos);
  EXPECT_NE(table.find("slowdown"), std::string::npos);
  const std::string sweep = render_memory_sweep(rows);
  EXPECT_NE(sweep.find("peak-saving"), std::string::npos);
}

TEST(Result, SummaryMentionsKeyMetrics) {
  const auto system = CodeCompressionSystem::from_workload(g721());
  const std::string summary = system.run().summary();
  EXPECT_NE(summary.find("cycles:"), std::string::npos);
  EXPECT_NE(summary.find("memory:"), std::string::npos);
  EXPECT_NE(summary.find("slowdown"), std::string::npos);
}

}  // namespace
}  // namespace apcc::core
